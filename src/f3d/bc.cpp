#include "f3d/bc.hpp"

#include "util/error.hpp"

namespace f3d {

namespace {

// Iterate the ghost cells of one face, mapping each ghost cell to the
// interior cell a given BC reads. `fn(gj,gk,gl, ij,ik,il, depth)` receives
// ghost indices, the matching face-adjacent interior indices for depth
// d = 1..kGhost, where "matching" means the cell d-1 layers inside for
// mirror-type BCs.
template <typename Fn>
void for_face_ghosts(const Zone& z, Face face, Fn&& fn) {
  const int jm = z.jmax(), km = z.kmax(), lm = z.lmax();
  const int ng = Zone::kGhost;
  switch (face) {
    case Face::kJMin:
      for (int l = -ng; l < lm + ng; ++l)
        for (int k = -ng; k < km + ng; ++k)
          for (int d = 1; d <= ng; ++d) fn(-d, k, l, d - 1, k, l, d);
      break;
    case Face::kJMax:
      for (int l = -ng; l < lm + ng; ++l)
        for (int k = -ng; k < km + ng; ++k)
          for (int d = 1; d <= ng; ++d) fn(jm + d - 1, k, l, jm - d, k, l, d);
      break;
    case Face::kKMin:
      for (int l = -ng; l < lm + ng; ++l)
        for (int j = -ng; j < jm + ng; ++j)
          for (int d = 1; d <= ng; ++d) fn(j, -d, l, j, d - 1, l, d);
      break;
    case Face::kKMax:
      for (int l = -ng; l < lm + ng; ++l)
        for (int j = -ng; j < jm + ng; ++j)
          for (int d = 1; d <= ng; ++d) fn(j, km + d - 1, l, j, km - d, l, d);
      break;
    case Face::kLMin:
      for (int k = -ng; k < km + ng; ++k)
        for (int j = -ng; j < jm + ng; ++j)
          for (int d = 1; d <= ng; ++d) fn(j, k, -d, j, k, d - 1, d);
      break;
    case Face::kLMax:
      for (int k = -ng; k < km + ng; ++k)
        for (int j = -ng; j < jm + ng; ++j)
          for (int d = 1; d <= ng; ++d) fn(j, k, lm + d - 1, j, k, lm - d, d);
      break;
  }
}

int normal_momentum_index(Face face) {
  switch (face) {
    case Face::kJMin:
    case Face::kJMax:
      return 1;
    case Face::kKMin:
    case Face::kKMax:
      return 2;
    case Face::kLMin:
    case Face::kLMax:
      return 3;
  }
  throw llp::Error("bad Face");
}

void apply_face(Zone& z, Face face, BcType type, const FreeStream& fs) {
  const int jm = z.jmax(), km = z.kmax(), lm = z.lmax();
  switch (type) {
    case BcType::kInterface:
      return;  // zonal exchange owns these ghosts
    case BcType::kFreeStream: {
      double qinf[kNumVars];
      fs.conservative(qinf);
      for_face_ghosts(z, face,
                      [&](int gj, int gk, int gl, int, int, int, int) {
                        double* g = z.q_point(gj, gk, gl);
                        for (int n = 0; n < kNumVars; ++n) g[n] = qinf[n];
                      });
      return;
    }
    case BcType::kExtrapolate: {
      // Zeroth-order: every ghost layer copies the face cell (depth-1 maps
      // to the cell one inside; reuse it for all depths via d==1 pattern).
      for_face_ghosts(z, face,
                      [&](int gj, int gk, int gl, int ij, int ik, int il,
                          int) {
                        // Clamp to the face layer: every depth copies it.
                        int cj = ij, ck = ik, cl = il;
                        if (gj < 0) cj = 0;
                        if (gj >= jm) cj = jm - 1;
                        if (gk < 0) ck = 0;
                        if (gk >= km) ck = km - 1;
                        if (gl < 0) cl = 0;
                        if (gl >= lm) cl = lm - 1;
                        const double* s = z.q_point(cj, ck, cl);
                        double* g = z.q_point(gj, gk, gl);
                        for (int n = 0; n < kNumVars; ++n) g[n] = s[n];
                      });
      return;
    }
    case BcType::kSlipWall: {
      const int nm = normal_momentum_index(face);
      for_face_ghosts(z, face,
                      [&](int gj, int gk, int gl, int ij, int ik, int il,
                          int) {
                        const double* s = z.q_point(ij, ik, il);
                        double* g = z.q_point(gj, gk, gl);
                        for (int n = 0; n < kNumVars; ++n) g[n] = s[n];
                        g[nm] = -g[nm];
                      });
      return;
    }
    case BcType::kNoSlipWall: {
      // Mirror with every velocity component negated: the face-average
      // velocity vanishes, enforcing u = v = w = 0 at the wall. Density
      // and total energy copy (kinetic energy is invariant under V -> -V).
      for_face_ghosts(z, face,
                      [&](int gj, int gk, int gl, int ij, int ik, int il,
                          int) {
                        const double* s = z.q_point(ij, ik, il);
                        double* g = z.q_point(gj, gk, gl);
                        g[0] = s[0];
                        g[1] = -s[1];
                        g[2] = -s[2];
                        g[3] = -s[3];
                        g[4] = s[4];
                      });
      return;
    }
    case BcType::kPeriodic: {
      for_face_ghosts(z, face,
                      [&](int gj, int gk, int gl, int, int, int, int) {
                        int sj = gj, sk = gk, sl = gl;
                        if (gj < 0) sj = gj + jm;
                        if (gj >= jm) sj = gj - jm;
                        if (gk < 0) sk = gk + km;
                        if (gk >= km) sk = gk - km;
                        if (gl < 0) sl = gl + lm;
                        if (gl >= lm) sl = gl - lm;
                        const double* s = z.q_point(sj, sk, sl);
                        double* g = z.q_point(gj, gk, gl);
                        for (int n = 0; n < kNumVars; ++n) g[n] = s[n];
                      });
      return;
    }
  }
  throw llp::Error("bad BcType");
}

}  // namespace

void apply_boundary_conditions(Zone& zone, const BoundarySet& bcs,
                               const FreeStream& fs) {
  for (int f = 0; f < kNumFaces; ++f) {
    apply_face(zone, static_cast<Face>(f), bcs.face[f], fs);
  }
}

}  // namespace f3d
