// The sweep-engine registry: one place that knows every engine.
//
// Replaces the old two-value `SweepMode` enum that every layer switched on
// by hand. A single EngineInfo row per engine carries the canonical
// spelling (what CLI flags, fuzzer Scenario specs, serve job JSON, and
// TuningDb entries print and parse — byte-stable with the pre-registry
// spellings "vector"/"risc"), the capability bits consumers branch on
// (does the solver register its sweep regions as parallel loops? do the
// kernels fuse multiply-adds, i.e. does cross-engine parity need the ULP
// tolerance instead of bitwise?), and the factory. Adding an engine means
// adding one row here plus its SweepEngine subclass — the parsers,
// printers, differential oracle, autotuner axis, and CLIs all iterate the
// registry and pick it up unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "f3d/sweeps.hpp"

namespace f3d {

/// Number of registered engines (EngineKind values 0..kNumEngines-1).
inline constexpr int kNumEngines = 3;

/// One registry row. `name` is the canonical on-the-wire spelling used by
/// every text surface; the legacy spellings are preserved exactly.
struct EngineInfo {
  EngineKind kind;
  std::string_view name;
  /// The solver registers sweep regions as parallel loops (doacross) for
  /// this engine; false = serial regions (the untuned vector baseline).
  bool parallel_outer;
  /// Kernels use fused multiply-adds (AVX2 path): cross-engine parity
  /// against this engine is tolerance-bounded, not bitwise — see the ULP
  /// policy in simd/pack.hpp and RunCaseOptions::simd_diff_tol.
  bool fma_lanes;
  std::string_view summary;
};

/// Every registered engine, in EngineKind value order.
std::span<const EngineInfo, kNumEngines> engines();

/// Registry row for `kind`; throws llp::Error on an out-of-range value.
const EngineInfo& engine_info(EngineKind kind);

/// Canonical spelling ("vector", "risc", "simd").
std::string_view engine_name(EngineKind kind);

/// Inverse of engine_name; returns false (and leaves *out alone) for an
/// unknown spelling.
bool parse_engine(std::string_view name, EngineKind* out);

/// "vector|risc|simd" — for usage strings and error messages, generated
/// from the registry so it can never drift.
const std::string& engine_names_usage();

/// Construct the engine. Every SweepEngine returned satisfies
/// make_engine(k)->kind() == k and ->name() == engine_name(k).
std::unique_ptr<SweepEngine> make_engine(EngineKind kind);

/// Wire decoding for the cluster protocol's uint32 engine field; returns
/// false on a value no registered engine owns (a malformed or
/// version-skewed INIT frame).
bool engine_from_wire(std::uint32_t value, EngineKind* out);

/// The engine run_protected() degrades to when one region keeps faulting
/// under `kind`: the serial plane-buffer baseline, unless `kind` already
/// is it.
EngineKind engine_fallback_for(EngineKind kind);

}  // namespace f3d
