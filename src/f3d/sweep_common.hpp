// Shared pieces of the implicit directional sweeps.
//
// One sweep applies (I + dt * delta_dir A_dir + implicit smoothing)^-1 to
// the right-hand side using the diagonalization A = R diag(lambda) L:
// project with L, solve five scalar tridiagonal systems along the line,
// project back with R. The recurrence lives in the Thomas solve, so the
// line direction can never be the parallel (or vector) direction — the
// fact the whole paper revolves around.
#pragma once

#include <span>

#include "f3d/zone.hpp"
#include "util/aligned.hpp"
#include "util/array.hpp"

namespace f3d {

/// Pencil workspace for one line of length <= capacity. This is the paper's
/// §4 item (4): the RISC tuning resizes the vector code's plane-sized
/// scratch down to a single line that "comfortably fits in a 1-MB cache for
/// zone dimensions ranging up to about 1,000" (24 doubles/point -> 192 KB at
/// N=1000).
struct PencilWorkspace {
  llp::AlignedVector<double> q;    // 5*N gathered state
  llp::AlignedVector<double> r;    // 5*N gathered rhs / result
  llp::AlignedVector<double> w;    // 5*N characteristic variables
  llp::AlignedVector<double> lam;  // 5*N eigenvalues
  llp::AlignedVector<double> a, b, c, d;  // N tridiagonal coefficients

  void ensure(int n);
  int capacity = 0;

  /// Current footprint, as reported to the analyzer's shared-scratch
  /// detector: a pencil is O(N) and lane-private; sharing one across lanes
  /// is the plane-buffer mistake the paper's §4 item (4) removes.
  std::size_t bytes() const noexcept {
    return sizeof(double) * (q.size() + r.size() + w.size() + lam.size() +
                             a.size() + b.size() + c.size() + d.size());
  }
};

/// Solve the implicit system along one line of `zone` in direction dir
/// (0=J,1=K,2=L) at fixed transverse indices (t0,t1):
///   dir 0: line (j, t0=k, t1=l);  dir 1: (t0=j, k, t1=l);
///   dir 2: (t0=j, t1=k, l).
/// Reads Q for coefficients, transforms rhs in place. kappa_i scales an
/// optional extra implicit second-difference smoothing. When `periodic` is
/// true the line closes on itself and a cyclic Thomas solve is used;
/// otherwise boundary rows couple one-sidedly inward (the ghost cells'
/// increments are zero — boundary conditions are reapplied explicitly).
void solve_pencil(const Zone& zone, int dir, int t0, int t1, double dt,
                  double kappa_i, llp::Array4D<double>& rhs,
                  PencilWorkspace& ws, bool periodic = false);

/// Workspace for one W-pencil batch of the SIMD engine (W =
/// kTridiagLaneWidth, fixed in tridiag.hpp): per-pencil gathered state in
/// the same 5-vars-fastest layout PencilWorkspace uses (pencil p at offset
/// p * 5*N), plus the lane-interleaved tridiagonal coefficient arrays the
/// batched Thomas kernel consumes (element i of lane p at i*W + p). Still
/// O(N) and lane-private — the cache story of the pencil organization is
/// unchanged, the batch just fills vector lanes.
struct SimdBatchWorkspace {
  llp::AlignedVector<double> q;    // W * 5N gathered state
  llp::AlignedVector<double> r;    // W * 5N gathered rhs / result
  llp::AlignedVector<double> w;    // W * 5N characteristic variables
  llp::AlignedVector<double> lam;  // W * 5N eigenvalues
  llp::AlignedVector<double> a, b, c, d;  // N * W lane-interleaved

  void ensure(int n);
  int capacity = 0;

  std::size_t bytes() const noexcept {
    return sizeof(double) * (q.size() + r.size() + w.size() + lam.size() +
                             a.size() + b.size() + c.size() + d.size());
  }
};

/// Solve the implicit system along `count` adjacent lines at once (the
/// lines at transverse inner indices inner0 .. inner0+count-1, fixed outer
/// index `outer`, in sweep_shape's (outer, inner) task coordinates).
/// count must be in [1, kTridiagLaneWidth]; a tail batch with count < W
/// replicates the last real pencil into the padding lanes (simd::batch
/// policy) and never scatters them back. Identical arithmetic to count
/// separate solve_pencil calls except inside the Thomas elimination, where
/// the lane kernel's fused multiply-adds round once instead of twice.
/// Non-periodic lines only — cyclic systems don't lane-batch (the
/// Sherman–Morrison correction couples whole-line solves); callers fall
/// back to solve_pencil per line, exactly as the plane-buffer engine does.
void solve_pencil_batch(const Zone& zone, int dir, int outer, int inner0,
                        int count, double dt, double kappa_i,
                        llp::Array4D<double>& rhs, SimdBatchWorkspace& ws);

/// Analytic FLOPs per grid point of one directional sweep.
inline constexpr double kFlopsPerPointSweep = 200.0;

/// Line length and trip counts of a sweep in direction dir.
struct SweepShape {
  int line_n = 0;    ///< points along the solve direction
  int outer_n = 0;   ///< parallelized loop trips
  int inner_n = 0;   ///< serial transverse loop inside each task
};
SweepShape sweep_shape(const Zone& zone, int dir);

}  // namespace f3d
