// Affine access signatures of the f3d hot regions, declared to the static
// dependence analyzer (analyze/static/) in the SAME coordinate space the
// dynamic logger records (core/access_hook.hpp):
//
//   * rhs / update — element coordinates of the zone's ghosted (n,j,k,l)
//     storage. One parallel task per interior L plane: the rhs task reads
//     the 2*kGhost+1 ghost-slab around its plane and writes exactly its
//     own rhs plane; the update task read-modify-writes its q plane from
//     its rhs plane. Plane strides make these exact affine accesses, and
//     the engine proves the ghost-slab reads never collide with any write
//     (reads may overlap freely) — DOALL.
//   * sweep_j/k/l — outer-task coordinates (one index per pencil batch):
//     stride-1, span-1 read of zone.q and write of rhs. Trivially DOALL;
//     the per-lane tridiag pencils and sweep_common projections live in
//     note_scratch'd workspaces the pencil rule polices dynamically.
//
// Keeping declaration in lockstep with what the bodies log is the
// soundness contract: the cross-validation oracle (static DOALL must
// never race dynamically) checks the pair on every analyzed run.
#pragma once

#include <string>
#include <vector>

#include "analyze/static/affine.hpp"
#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"

namespace f3d {

/// Signature of z<i>.rhs for one zone (trips = lmax).
llp::analyze::AffineSignature rhs_region_signature(const Zone& zone);

/// Signature of z<i>.update for one zone (trips = lmax).
llp::analyze::AffineSignature update_region_signature(const Zone& zone);

/// Signature of z<i>.sweep_{j,k,l} (outer-task coordinates; the pencil
/// batch count is engine-dependent, so trips stays symbolic — the verdict
/// must hold for every batching).
llp::analyze::AffineSignature sweep_region_signature();

/// Region names the solver will register for `grid` under `config`'s
/// prefix, sweep regions only (what select_engine checks for legality).
std::vector<std::string> sweep_region_names(const MultiZoneGrid& grid,
                                            const SolverConfig& config);

/// Declare every hot-region signature for `grid` under `config`'s prefix.
/// overwrite=true (Solver::define_regions) re-derives from this grid's
/// dimensions and wins; overwrite=false (select_engine's probe path)
/// yields to any existing declaration.
void declare_region_signatures(const MultiZoneGrid& grid,
                               const SolverConfig& config, bool overwrite);

}  // namespace f3d
