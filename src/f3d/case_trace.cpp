#include "f3d/case_trace.hpp"

#include "f3d/solver.hpp"
#include "perf/trace_builder.hpp"
#include "util/error.hpp"

namespace f3d {

llp::model::WorkTrace measure_full_size_trace(const CaseSpec& scaled,
                                              const CaseSpec& full,
                                              const std::string& region_prefix,
                                              int steps) {
  LLP_REQUIRE(scaled.zones.size() == full.zones.size(),
              "scaled and full cases must have the same zone count");
  LLP_REQUIRE(steps >= 1, "steps must be >= 1");

  auto grid = build_grid(scaled);
  add_gaussian_pulse(grid, 0.05, 2.0);
  SolverConfig cfg;
  cfg.freestream = scaled.freestream;
  cfg.region_prefix = region_prefix;
  llp::regions().reset_stats();
  Solver solver(grid, cfg);
  solver.run(steps);

  std::vector<llp::RegionStats> mine;
  for (const auto& r : llp::regions().snapshot()) {
    if (r.name.rfind(region_prefix + ".", 0) == 0 && r.invocations > 0) {
      mine.push_back(r);
    }
  }
  llp::model::WorkTrace trace = llp::perf::build_trace(mine, steps);

  // Face/interface point ratios for the serial regions' (small) work.
  auto face_points = [](const CaseSpec& c) {
    double sum = 0.0;
    for (const auto& z : c.zones) {
      sum += 2.0 * (static_cast<double>(z.jmax) * z.kmax +
                    static_cast<double>(z.jmax) * z.lmax +
                    static_cast<double>(z.kmax) * z.lmax);
    }
    return sum;
  };
  auto iface_points = [](const CaseSpec& c) {
    double sum = 0.0;
    for (std::size_t z = 0; z + 1 < c.zones.size(); ++z) {
      sum += static_cast<double>(c.zones[z].kmax) * c.zones[z].lmax;
    }
    return sum;
  };
  const double face_ratio = face_points(full) / face_points(scaled);
  const double iface_ratio = iface_points(scaled) > 0.0
                                 ? iface_points(full) / iface_points(scaled)
                                 : 1.0;

  for (auto& loop : trace.loops) {
    const std::string name = loop.name.substr(region_prefix.size() + 1);
    if (name == "bc" || name == "exchange") {
      const double r = (name == "bc") ? face_ratio : iface_ratio;
      loop.flops_per_step *= r;
      loop.bytes_per_step *= r;
      continue;
    }
    // Region names are "z<i>.<kernel>".
    const int zi = std::stoi(name.substr(1, name.find('.') - 1));
    const std::string kernel = name.substr(name.find('.') + 1);
    const auto& zs = scaled.zones[static_cast<std::size_t>(zi)];
    const auto& zf = full.zones[static_cast<std::size_t>(zi)];
    const double point_ratio =
        static_cast<double>(zf.points()) / static_cast<double>(zs.points());
    loop.flops_per_step *= point_ratio;
    loop.bytes_per_step *= point_ratio;
    if (loop.parallel) {
      loop.trips = (kernel == "sweep_l") ? zf.kmax : zf.lmax;
    }
  }
  return trace;
}

}  // namespace f3d
