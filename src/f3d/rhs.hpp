// Explicit right-hand side: central flux differences plus scalar JST
// artificial dissipation.
//
// R(Q) approximates the flux divergence; the implicit update solves
//   (I + dt A_j)(I + dt A_k)(I + dt A_l) dQ = -dt R(Q).
//
// The RHS is evaluated plane-by-plane so the solver can parallelize the
// outer L loop (a doacross with lmax trips) while the inner J/K loops stay
// serial and vectorizable — the paper's Example 1 structure.
#pragma once

#include "f3d/viscous.hpp"
#include "f3d/zone.hpp"
#include "util/array.hpp"

namespace f3d {

struct RhsConfig {
  double kappa2 = 0.5;        ///< 2nd-difference (shock) dissipation gain
  double kappa4 = 1.0 / 64.0; ///< 4th-difference (background) gain
  ViscousConfig viscous;      ///< thin-layer terms (off by default)
};

/// Compute rhs(n,j,k,l) = -dt * R(Q) for all interior cells of plane l.
/// `rhs` must have the zone's padded shape; ghosts of Q must be current.
void compute_rhs_plane(const Zone& zone, int l, double dt,
                       const RhsConfig& config, llp::Array4D<double>& rhs);

/// L2 norm of R(Q)*dt over one plane (used for residual monitoring):
/// sum of squares of the plane's rhs entries.
double rhs_plane_sumsq(const Zone& zone, int l, const llp::Array4D<double>& rhs);

/// Analytic FLOPs per interior grid point of compute_rhs_plane.
inline constexpr double kFlopsPerPointRhs = 340.0;

}  // namespace f3d
