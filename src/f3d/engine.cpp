#include "f3d/engine.hpp"

#include <array>

#include "util/error.hpp"

namespace f3d {

namespace {

// THE registry. Order must match EngineKind values (checked below); the
// names are the byte-stable spellings every text surface shares.
constexpr std::array<EngineInfo, kNumEngines> kEngines{{
    {EngineKind::kPlaneVector, "vector", /*parallel_outer=*/false,
     /*fma_lanes=*/false,
     "plane buffers, serial — the legacy vector-machine organization"},
    {EngineKind::kPencilScalar, "risc", /*parallel_outer=*/true,
     /*fma_lanes=*/false,
     "cache-sized pencils, outer loop doacross — the paper's tuned form"},
    {EngineKind::kPencilSimd, "simd", /*parallel_outer=*/true,
     /*fma_lanes=*/true,
     "pencil batches solved in lockstep across SIMD lanes"},
}};

static_assert(static_cast<int>(kEngines[0].kind) == 0 &&
                  static_cast<int>(kEngines[1].kind) == 1 &&
                  static_cast<int>(kEngines[2].kind) == 2,
              "registry order must match EngineKind wire values");

}  // namespace

std::span<const EngineInfo, kNumEngines> engines() {
  return std::span<const EngineInfo, kNumEngines>(kEngines);
}

const EngineInfo& engine_info(EngineKind kind) {
  const int i = static_cast<int>(kind);
  LLP_REQUIRE(i >= 0 && i < kNumEngines, "unknown EngineKind value");
  return kEngines[static_cast<std::size_t>(i)];
}

std::string_view engine_name(EngineKind kind) {
  return engine_info(kind).name;
}

bool parse_engine(std::string_view name, EngineKind* out) {
  for (const EngineInfo& info : kEngines) {
    if (info.name == name) {
      *out = info.kind;
      return true;
    }
  }
  return false;
}

const std::string& engine_names_usage() {
  static const std::string usage = [] {
    std::string s;
    for (const EngineInfo& info : kEngines) {
      if (!s.empty()) s += '|';
      s += info.name;
    }
    return s;
  }();
  return usage;
}

std::unique_ptr<SweepEngine> make_engine(EngineKind kind) {
  switch (engine_info(kind).kind) {  // engine_info validates the value
    case EngineKind::kPlaneVector: return std::make_unique<VectorSweeps>();
    case EngineKind::kPencilScalar: return std::make_unique<RiscSweeps>();
    case EngineKind::kPencilSimd: return std::make_unique<SimdSweeps>();
  }
  throw llp::Error("unknown EngineKind value");
}

bool engine_from_wire(std::uint32_t value, EngineKind* out) {
  if (value >= static_cast<std::uint32_t>(kNumEngines)) return false;
  *out = static_cast<EngineKind>(value);
  return true;
}

EngineKind engine_fallback_for(EngineKind kind) {
  (void)engine_info(kind);  // validate
  return EngineKind::kPlaneVector;
}

}  // namespace f3d
