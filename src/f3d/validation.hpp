// Validation tooling (paper §6).
//
// The paper's workflow tuned one loop at a time and re-validated constantly:
// quick few-step checks, converged-solution comparisons, daily version
// numbers so "diff" could bisect regressions. This header is that workflow
// as an API:
//
//   * checksum()        — a deterministic digest of a solution, cheap enough
//                         to log every run ("quick and dirty tests");
//   * linf_diff / l2_diff — field comparison between two solutions (the
//                         converged-solution check, and the tool that proves
//                         the vector and RISC variants agree);
//   * RunHistory        — per-step residual/checksum log; first_divergence
//                         between two histories is exactly the "find which
//                         version first broke" bisect on one run's timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "f3d/multizone.hpp"

namespace f3d {

/// Order-independent-of-nothing (i.e. fully order-sensitive) FNV-1a digest
/// of all interior cell values. Identical solutions hash identically on any
/// platform with IEEE doubles.
std::uint64_t checksum(const MultiZoneGrid& grid);

/// Max absolute difference over all interior cells and variables. Grids
/// must have identical zone dimensions.
double linf_diff(const MultiZoneGrid& a, const MultiZoneGrid& b);

/// Root-mean-square difference over all interior cells and variables.
double l2_diff(const MultiZoneGrid& a, const MultiZoneGrid& b);

/// True iff every interior cell value is finite (no NaN/Inf). The solver's
/// per-step health check: one poisoned value fails the whole grid.
bool all_finite(const MultiZoneGrid& grid);

/// Per-step log of a run.
struct RunHistory {
  std::vector<double> residuals;
  std::vector<std::uint64_t> checksums;

  void record(double residual, std::uint64_t digest) {
    residuals.push_back(residual);
    checksums.push_back(digest);
  }
  std::size_t steps() const { return residuals.size(); }

  /// Drop entries past the first `keep` steps — the history-side of a
  /// solver rollback, so a recovered run's log matches what actually
  /// stands after replay. No-op if the history is already that short.
  void truncate(std::size_t keep) {
    if (residuals.size() > keep) residuals.resize(keep);
    if (checksums.size() > keep) checksums.resize(keep);
  }
};

/// First step at which two histories diverge: checksum mismatch, or
/// relative residual difference above tol. Returns -1 if they agree over
/// their common length.
int first_divergence(const RunHistory& a, const RunHistory& b,
                     double residual_tol = 1e-12);

/// True if the residual trend is (noisily) decreasing: the mean of the last
/// quarter is below `factor` times the mean of the first quarter.
bool residual_decreasing(const RunHistory& history, double factor = 0.5);

}  // namespace f3d
