// Multi-zone grid: blocks stacked along J with ghost-cell exchange.
//
// The paper's test cases are zonal grids (1M case: zones 15/87/89 x 75 x 70;
// 59M case: 29/173/175 x 450 x 350) — three blocks splitting the body axis.
// Adjacent zones share K/L dimensions and exchange kGhost layers of cells
// across their J interfaces each step. The exchange is cheap and left
// serial, like the BC routines.
#pragma once

#include <vector>

#include "f3d/bc.hpp"
#include "f3d/zone.hpp"

namespace f3d {

class MultiZoneGrid {
public:
  /// Build zones left-to-right along x with uniform spacing h in all
  /// directions. Interfaces get BcType::kInterface automatically; exterior
  /// faces default to: inflow (free stream) at the first zone's JMin,
  /// extrapolation at the last zone's JMax, free stream on all K/L faces.
  MultiZoneGrid(const std::vector<ZoneDims>& dims, double h);

  int num_zones() const noexcept { return static_cast<int>(zones_.size()); }
  Zone& zone(int i) { return zones_[static_cast<std::size_t>(i)]; }
  const Zone& zone(int i) const { return zones_[static_cast<std::size_t>(i)]; }

  BoundarySet& bcs(int i) { return bcs_[static_cast<std::size_t>(i)]; }
  const BoundarySet& bcs(int i) const {
    return bcs_[static_cast<std::size_t>(i)];
  }

  double spacing() const noexcept { return h_; }

  /// Total interior grid points across zones.
  std::size_t total_points() const;

  /// Per-zone dimensions in order — what a checkpoint manifest records and
  /// the loader compares before trusting any payload.
  std::vector<ZoneDims> zone_dims() const;

  /// Set every zone to the free stream.
  void set_freestream(const FreeStream& fs);

  /// Copy interface ghost cells from neighboring zones' interiors.
  void exchange();

private:
  std::vector<Zone> zones_;
  std::vector<BoundarySet> bcs_;
  double h_;
};

}  // namespace f3d
