#include "f3d/halo.hpp"

#include "f3d/gas.hpp"
#include "util/error.hpp"

namespace f3d {

namespace {
constexpr int kNg = Zone::kGhost;
}

std::size_t halo_doubles(const Zone& z) {
  return static_cast<std::size_t>(kNg) * (z.kmax() + 2 * kNg) *
         (z.lmax() + 2 * kNg) * kNumVars;
}

void pack_halo_face(const Zone& z, bool right, std::vector<double>& buf) {
  buf.clear();
  buf.reserve(halo_doubles(z));
  for (int d = 1; d <= kNg; ++d) {
    const int j = right ? z.jmax() - d : d - 1;
    for (int l = -kNg; l < z.lmax() + kNg; ++l) {
      for (int k = -kNg; k < z.kmax() + kNg; ++k) {
        const double* q = z.q_point(j, k, l);
        buf.insert(buf.end(), q, q + kNumVars);
      }
    }
  }
}

void unpack_halo_face(Zone& z, bool right, const std::vector<double>& buf) {
  LLP_REQUIRE(buf.size() == halo_doubles(z), "interface message size");
  std::size_t idx = 0;
  for (int d = 1; d <= kNg; ++d) {
    const int j = right ? z.jmax() + d - 1 : -d;
    for (int l = -kNg; l < z.lmax() + kNg; ++l) {
      for (int k = -kNg; k < z.kmax() + kNg; ++k) {
        double* q = z.q_point(j, k, l);
        for (int n = 0; n < kNumVars; ++n) q[n] = buf[idx++];
      }
    }
  }
}

}  // namespace f3d
