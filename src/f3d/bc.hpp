// Boundary conditions.
//
// Ghost-cell fills applied before each right-hand-side evaluation. These are
// the routines the paper deliberately leaves serial: a face has JMAX*KMAX
// points against the interior's JMAX*KMAX*LMAX, so the work per
// synchronization event is too small to parallelize profitably (Table 2) —
// at the cost of an Amdahl tail at high processor counts (§4).
#pragma once

#include "f3d/gas.hpp"
#include "f3d/zone.hpp"

namespace f3d {

enum class Face { kJMin, kJMax, kKMin, kKMax, kLMin, kLMax };
inline constexpr int kNumFaces = 6;

enum class BcType {
  kFreeStream,   ///< ghost = free-stream state (supersonic inflow)
  kExtrapolate,  ///< ghost = nearest interior cell (supersonic outflow)
  kSlipWall,     ///< mirror with normal velocity negated (inviscid wall)
  kNoSlipWall,   ///< mirror with ALL velocity negated (viscous wall)
  kPeriodic,     ///< ghost = opposite side of the same zone
  kInterface,    ///< filled by zonal exchange, not by this routine
};

/// One zone's boundary assignment, indexed by Face.
struct BoundarySet {
  BcType face[kNumFaces] = {BcType::kFreeStream, BcType::kExtrapolate,
                            BcType::kExtrapolate, BcType::kExtrapolate,
                            BcType::kExtrapolate, BcType::kExtrapolate};

  BcType& operator[](Face f) { return face[static_cast<int>(f)]; }
  BcType operator[](Face f) const { return face[static_cast<int>(f)]; }

  /// All six faces set to one type.
  static BoundarySet uniform(BcType t) {
    BoundarySet b;
    for (auto& f : b.face) f = t;
    return b;
  }
};

/// Fill the ghost layers of every non-interface face.
void apply_boundary_conditions(Zone& zone, const BoundarySet& bcs,
                               const FreeStream& fs);

}  // namespace f3d
