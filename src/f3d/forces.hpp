// Surface force integration — what the paper's users (ARL projectile
// aerodynamicists) ran F3D *for*.
//
// Integrates the pressure force over a zone face treated as a solid wall
// (slip or no-slip): F = sum over face cells of p * A * n, with the wall
// pressure taken from the first interior cell (the standard zeroth-order
// wall-pressure extraction on a Cartesian grid). Coefficients are
// normalized by q_inf = 0.5 * rho_inf * V_inf^2 and the face's total area.
#pragma once

#include "f3d/bc.hpp"
#include "f3d/gas.hpp"
#include "f3d/multizone.hpp"

namespace f3d {

struct WallForce {
  double fx = 0.0, fy = 0.0, fz = 0.0;  ///< force components (pressure only)
  double area = 0.0;                    ///< integrated face area

  /// Pressure-force coefficients normalized by q_inf * area.
  double cx(const FreeStream& fs) const;
  double cy(const FreeStream& fs) const;
  double cz(const FreeStream& fs) const;
};

/// Integrate the pressure force exerted BY the fluid ON the wall `face`
/// of `zone` (the force points from fluid into the wall: along the
/// outward-of-domain normal).
WallForce integrate_wall_force(const Zone& zone, Face face);

/// Sum over every zone face carrying a wall BC (slip or no-slip).
WallForce total_wall_force(const MultiZoneGrid& grid);

}  // namespace f3d
