#include "f3d/engine_select.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "analyze/static/registry.hpp"
#include "core/runtime.hpp"
#include "f3d/signatures.hpp"
#include "tune/candidates.hpp"
#include "tune/tuner.hpp"
#include "util/error.hpp"

namespace f3d {

namespace {

// Static legality gate for the engine axis: an engine that runs the sweep
// regions as parallel outer loops is only eligible when every sweep
// signature classifies DOALL. Signatures are declared if_absent first, so
// a caller (or test) that declared a stricter pattern wins over the
// default derivation — exactly how an illegal engine config gets pruned
// before a single probe sweep is paid for.
bool parallel_sweeps_legal(const MultiZoneGrid& grid,
                           const SolverConfig& config) {
  declare_region_signatures(grid, config, /*overwrite=*/false);
  for (const std::string& region : sweep_region_names(grid, config)) {
    if (!llp::analyze::static_legality(region).parallel_ok()) return false;
  }
  return true;
}

// Deterministic, cheap, non-trivial rhs payload for the probe sweep: the
// same bytes every call, so probe timings across runs measure the engine,
// not the data. Values stay O(1e-3) — well inside every engine's assumed
// smooth regime.
void fill_probe_rhs(llp::Array4D<double>& rhs) {
  double x = 0.5;
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    // Weyl sequence: dense in (0,1), no libc RNG, no global state.
    x += 0.6180339887498949;
    if (x >= 1.0) x -= 1.0;
    rhs.data()[i] = 1e-3 * (x - 0.5);
  }
}

std::string engine_key(const MultiZoneGrid& grid, const SolverConfig& config,
                       std::int64_t trips) {
  const std::string region =
      "engine." +
      (config.region_prefix.empty() ? std::string("select")
                                    : config.region_prefix);
  const int threads = llp::Runtime::current().num_threads();
  return llp::tune::make_key(region, trips,
                             llp::tune::machine_fingerprint(threads));
}

}  // namespace

EngineChoice select_engine(const MultiZoneGrid& grid,
                           const SolverConfig& config,
                           llp::tune::Tuner* tuner, int repeats) {
  LLP_REQUIRE(grid.num_zones() > 0, "select_engine: empty grid");
  if (repeats < 1) repeats = 1;

  // Probe the largest zone: it dominates the step time, so its winner is
  // the run's winner.
  int biggest = 0;
  for (int z = 1; z < grid.num_zones(); ++z) {
    if (grid.zone(z).interior_points() >
        grid.zone(biggest).interior_points()) {
      biggest = z;
    }
  }
  const Zone& zone = grid.zone(biggest);
  const auto trips = static_cast<std::int64_t>(zone.interior_points());
  const std::string key = engine_key(grid, config, trips);

  // A persisted decision with a parsable engine column short-circuits the
  // probe (the loop tuner's load -> identical-decisions contract).
  if (tuner != nullptr) {
    llp::tune::TunedEntry hit;
    EngineKind cached;
    if (tuner->db().lookup(key, &hit) && !hit.engine.empty() &&
        parse_engine(hit.engine, &cached)) {
      return EngineChoice{cached, hit.seconds, /*from_db=*/true};
    }
  }

  const double dt =
      config.cfl * grid.spacing() / (config.freestream.mach + 1.0);
  auto& rt = llp::Runtime::current();
  llp::Array4D<double> rhs(kNumVars, zone.jmax() + 2 * Zone::kGhost,
                           zone.kmax() + 2 * Zone::kGhost,
                           zone.lmax() + 2 * Zone::kGhost);

  EngineChoice best;
  best.seconds = std::numeric_limits<double>::infinity();
  const bool parallel_ok = parallel_sweeps_legal(grid, config);
  for (const EngineInfo& info : engines()) {
    // Statically illegal engine x schedule config: never probed. The
    // serial plane-buffer engine (parallel_outer == false) stays legal
    // under any verdict, so the candidate set is never empty.
    if (info.parallel_outer && !parallel_ok) continue;
    const llp::RegionId region = rt.regions().define(
        "engine_select.probe." + std::string(info.name),
        info.parallel_outer ? llp::RegionKind::kParallelLoop
                            : llp::RegionKind::kSerial);
    auto engine = make_engine(info.kind);
    double best_run = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats + 1; ++r) {
      fill_probe_rhs(rhs);
      const auto start = std::chrono::steady_clock::now();
      engine->sweep(zone, /*dir=*/0, dt, config.kappa_i, rhs, region,
                    /*periodic=*/false);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      // Repeat 0 is a warm-up (workspace allocation, first-touch); it
      // never scores.
      if (r > 0) best_run = std::min(best_run, elapsed.count());
    }
    if (best_run < best.seconds) {
      best.kind = info.kind;
      best.seconds = best_run;
    }
  }

  if (tuner != nullptr) {
    llp::tune::TunedEntry entry;
    entry.config.num_threads = rt.num_threads();
    entry.seconds = best.seconds;
    entry.trials = static_cast<std::uint64_t>(repeats);
    entry.engine = std::string(engine_name(best.kind));
    tuner->db().put(key, entry);
  }
  return best;
}

}  // namespace f3d
