#include "f3d/cases.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace f3d {

namespace {
int scaled_dim(int dim, double scale) {
  return std::max(6, static_cast<int>(std::lround(dim * scale)));
}
}  // namespace

std::size_t CaseSpec::total_points() const {
  std::size_t n = 0;
  for (const auto& z : zones) n += z.points();
  return n;
}

CaseSpec paper_1m_case(double scale) {
  LLP_REQUIRE(scale > 0.0, "scale must be positive");
  CaseSpec c;
  c.zones = {ZoneDims{scaled_dim(15, scale), scaled_dim(75, scale),
                      scaled_dim(70, scale)},
             ZoneDims{scaled_dim(87, scale), scaled_dim(75, scale),
                      scaled_dim(70, scale)},
             ZoneDims{scaled_dim(89, scale), scaled_dim(75, scale),
                      scaled_dim(70, scale)}};
  c.freestream.mach = 2.0;
  c.freestream.alpha_deg = 2.0;
  c.spacing = 0.1;
  return c;
}

CaseSpec paper_59m_case(double scale) {
  LLP_REQUIRE(scale > 0.0, "scale must be positive");
  CaseSpec c;
  c.zones = {ZoneDims{scaled_dim(29, scale), scaled_dim(450, scale),
                      scaled_dim(350, scale)},
             ZoneDims{scaled_dim(173, scale), scaled_dim(450, scale),
                      scaled_dim(350, scale)},
             ZoneDims{scaled_dim(175, scale), scaled_dim(450, scale),
                      scaled_dim(350, scale)}};
  c.freestream.mach = 2.0;
  c.freestream.alpha_deg = 2.0;
  c.spacing = 0.05;
  return c;
}

CaseSpec wall_compression_case(int n, double mach) {
  LLP_REQUIRE(n >= 6, "need n >= 6");
  CaseSpec c;
  c.zones = {ZoneDims{n, n, n}};
  c.freestream.mach = mach;
  // Negative alpha pitches the stream INTO the KMin wall (y-min), so a
  // slip wall there sees genuine compression.
  c.freestream.alpha_deg = -2.0;
  c.spacing = 1.0 / n;
  return c;
}

CaseSpec vortex_case(int n) {
  LLP_REQUIRE(n >= 8, "need n >= 8");
  CaseSpec c;
  c.zones = {ZoneDims{n, n, std::max(6, n / 4)}};
  c.freestream.mach = 0.5;
  c.freestream.alpha_deg = 0.0;
  c.spacing = 10.0 / n;  // box [0,10): the standard vortex domain
  return c;
}

MultiZoneGrid build_grid(const CaseSpec& spec) {
  MultiZoneGrid grid(spec.zones, spec.spacing);
  grid.set_freestream(spec.freestream);
  return grid;
}

void make_periodic(MultiZoneGrid& grid) {
  LLP_REQUIRE(grid.num_zones() == 1,
              "periodic BCs are only supported for single-zone grids");
  grid.bcs(0) = BoundarySet::uniform(BcType::kPeriodic);
}

void add_kmin_wall(MultiZoneGrid& grid) {
  for (int z = 0; z < grid.num_zones(); ++z) {
    grid.bcs(z)[Face::kKMin] = BcType::kSlipWall;
  }
}

Prim Vortex::exact(const FreeStream& fs, double x, double y) const {
  // Shu's isentropic vortex in the standard normalization (T_inf = 1,
  // a_inf = sqrt(gamma)), converted to this solver's a_inf = 1 units:
  // velocities divide by sqrt(gamma), temperature by gamma.
  const double dx = x - x0;
  const double dy = y - y0;
  const double r2 = dx * dx + dy * dy;
  const double e = std::exp(0.5 * (1.0 - r2));
  const double g = kGamma;

  const double du_std = -beta / (2.0 * M_PI) * e * dy;
  const double dv_std = beta / (2.0 * M_PI) * e * dx;
  const double t_std =
      1.0 - (g - 1.0) * beta * beta / (8.0 * g * M_PI * M_PI) * e * e;

  const Prim inf = fs.prim();
  Prim s;
  s.rho = std::pow(t_std, 1.0 / (g - 1.0));
  const double t_ours = t_std / g;
  s.p = s.rho * t_ours;
  const double rg = std::sqrt(g);
  s.u = inf.u + du_std / rg;
  s.v = inf.v + dv_std / rg;
  s.w = inf.w;
  return s;
}

void initialize_vortex(MultiZoneGrid& grid, const FreeStream& fs,
                       const Vortex& vortex) {
  for (int zi = 0; zi < grid.num_zones(); ++zi) {
    Zone& z = grid.zone(zi);
    const int ng = Zone::kGhost;
    for (int l = -ng; l < z.lmax() + ng; ++l) {
      for (int k = -ng; k < z.kmax() + ng; ++k) {
        for (int j = -ng; j < z.jmax() + ng; ++j) {
          const Prim s = vortex.exact(fs, z.x(j), z.y(k));
          to_conservative(s, z.q_point(j, k, l));
        }
      }
    }
  }
}

double vortex_l2_error(const MultiZoneGrid& grid, const FreeStream& fs,
                       const Vortex& vortex, double t, double extent) {
  LLP_REQUIRE(extent > 0.0, "extent must be positive");
  const Prim inf = fs.prim();
  double err2 = 0.0;
  std::size_t count = 0;
  for (int zi = 0; zi < grid.num_zones(); ++zi) {
    const Zone& z = grid.zone(zi);
    for (int l = 0; l < z.lmax(); ++l) {
      for (int k = 0; k < z.kmax(); ++k) {
        for (int j = 0; j < z.jmax(); ++j) {
          // Wrap the translated vortex center into the periodic box.
          auto wrap = [extent](double d) {
            d = std::fmod(d, extent);
            if (d > 0.5 * extent) d -= extent;
            if (d < -0.5 * extent) d += extent;
            return d;
          };
          Vortex moved = vortex;
          moved.x0 = 0.0;
          moved.y0 = 0.0;
          const double dx = wrap(z.x(j) - vortex.x0 - inf.u * t);
          const double dy = wrap(z.y(k) - vortex.y0 - inf.v * t);
          const Prim exact = moved.exact(fs, dx, dy);
          const double rho = z.q(0, j, k, l);
          const double d = rho - exact.rho;
          err2 += d * d;
          ++count;
        }
      }
    }
  }
  return std::sqrt(err2 / static_cast<double>(count));
}

void add_gaussian_pulse(MultiZoneGrid& grid, double amp, double radius_cells) {
  LLP_REQUIRE(radius_cells > 0.0, "radius must be positive");
  // Domain center across all zones.
  double xmin = 1e300, xmax = -1e300;
  const Zone& z0 = grid.zone(0);
  const Zone& zl = grid.zone(grid.num_zones() - 1);
  xmin = z0.x(0);
  xmax = zl.x(zl.jmax() - 1);
  const double xc = 0.5 * (xmin + xmax);
  const double yc = 0.5 * (z0.y(0) + z0.y(z0.kmax() - 1));
  const double zc = 0.5 * (z0.z(0) + z0.z(z0.lmax() - 1));
  const double sigma = radius_cells * grid.spacing();

  for (int zi = 0; zi < grid.num_zones(); ++zi) {
    Zone& z = grid.zone(zi);
    for (int l = 0; l < z.lmax(); ++l) {
      for (int k = 0; k < z.kmax(); ++k) {
        for (int j = 0; j < z.jmax(); ++j) {
          const double dx = z.x(j) - xc;
          const double dy = z.y(k) - yc;
          const double dz = z.z(l) - zc;
          const double r2 = (dx * dx + dy * dy + dz * dz) / (sigma * sigma);
          const double gsn = std::exp(-0.5 * r2);
          Prim s = to_prim(z.q_point(j, k, l));
          const double factor = 1.0 + amp * gsn;
          s.rho *= factor;
          s.p *= std::pow(factor, kGamma);  // isentropic perturbation
          to_conservative(s, z.q_point(j, k, l));
        }
      }
    }
  }
}

}  // namespace f3d
