// Width-templated lane-batched Thomas kernel (internal).
//
// One instantiation of this template is compiled per architecture: the
// generic scalar pack in tridiag.cpp and, when the toolchain supports it,
// an AVX2+FMA pack in tridiag_avx2.cpp (a dedicated translation unit built
// with -mavx2 -mfma so the rest of the library keeps the portable
// baseline flags). solve_tridiagonal_lanes() in tridiag.cpp dispatches
// between them at runtime.
#pragma once

#include "simd/pack.hpp"

namespace f3d::detail {

/// Thomas elimination over P::width interleaved independent systems of
/// length n (element i of lane w at index i*W + w; see tridiag.hpp for
/// the public contract). The carried dependence runs along i in every
/// lane, but the lanes never couple — each step's divide and two
/// multiply-subtracts are one vector op each, amortizing the division
/// latency chain (the serial bottleneck of the scalar solve) W ways.
template <class P>
inline void solve_tridiagonal_lanes_t(const double* a, double* b,
                                      const double* c, double* d, int n) {
  constexpr int W = P::width;
  // Forward elimination; b and d of row i-1 stay live in registers.
  P bp = P::load(b);
  P dp = P::load(d);
  for (int i = 1; i < n; ++i) {
    const std::size_t at = static_cast<std::size_t>(i) * W;
    const P m = P::load(a + at) / bp;
    const P bi = P::fnma(m, P::load(c + at - W), P::load(b + at));
    const P di = P::fnma(m, dp, P::load(d + at));
    bi.store(b + at);
    di.store(d + at);
    bp = bi;
    dp = di;
  }
  // Back substitution.
  P dn = dp / bp;
  dn.store(d + static_cast<std::size_t>(n - 1) * W);
  for (int i = n - 2; i >= 0; --i) {
    const std::size_t at = static_cast<std::size_t>(i) * W;
    dn = P::fnma(P::load(c + at), dn, P::load(d + at)) / P::load(b + at);
    dn.store(d + at);
  }
}

#if defined(LLP_F3D_HAVE_AVX2_TU)
/// The AVX2+FMA instantiation, defined in tridiag_avx2.cpp.
void solve_tridiagonal_lanes_avx2(const double* a, double* b, const double* c,
                                  double* d, int n);
#endif

}  // namespace f3d::detail
