#include "f3d/sweeps.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "f3d/eigen.hpp"
#include "f3d/tridiag.hpp"
#include "util/error.hpp"

namespace f3d {

namespace {

// Transverse indices (t0,t1) for task (outer, inner) of a dir sweep; see
// solve_pencil's convention.
inline void transverse(int dir, int outer, int inner, int& t0, int& t1) {
  switch (dir) {
    case 0: t0 = inner; t1 = outer; break;  // (k,l)
    case 1: t0 = inner; t1 = outer; break;  // (j,l)
    default: t0 = inner; t1 = outer; break; // (j,k)
  }
}

}  // namespace

void RiscSweeps::sweep(const Zone& zone, int dir, double dt, double kappa_i,
                       llp::Array4D<double>& rhs, llp::RegionId region,
                       bool periodic) {
  const SweepShape shape = sweep_shape(zone, dir);
  // Sized from the runtime that will actually run the loop. Sizing from the
  // process instance was a latent singleton assumption: a per-job runtime
  // with more lanes than the default would index past the workspace vector.
  const std::size_t lanes =
      static_cast<std::size_t>(llp::Runtime::current().num_threads());
  if (workspaces_.size() < lanes) workspaces_.resize(lanes);

  // Auto mode: when a tuner is installed (LLP_TUNE=1), the sweep's
  // schedule/chunk/thread count come from its measured history instead of
  // the hand-picked C$doacross default. Off by default — the options fall
  // back to static block when tuning is disabled.
  llp::doacross(
      region, shape.outer_n,
      [&](std::int64_t outer, const llp::LaneContext& ctx) {
        PencilWorkspace& ws =
            workspaces_[static_cast<std::size_t>(ctx.lane())];
        // Access logging in outer-task coordinates: pencils stride through
        // memory, so the useful disjointness fact is the outer index each
        // task owns, not a bounding byte interval (which would overlap for
        // every pair of lanes). One log call per task, not per point.
        ctx.log_read(ctx.array_id("zone.q"), outer, outer + 1);
        ctx.log_write(ctx.array_id("rhs"), outer, outer + 1);
        ctx.note_scratch(&ws, ws.bytes());
        for (int inner = 0; inner < shape.inner_n; ++inner) {
          int t0, t1;
          transverse(dir, static_cast<int>(outer), inner, t0, t1);
          solve_pencil(zone, dir, t0, t1, dt, kappa_i, rhs, ws, periodic);
        }
      },
      llp::ForOptions{}.with_auto_tune());
}

void SimdSweeps::sweep(const Zone& zone, int dir, double dt, double kappa_i,
                       llp::Array4D<double>& rhs, llp::RegionId region,
                       bool periodic) {
  const SweepShape shape = sweep_shape(zone, dir);
  const std::size_t lanes =
      static_cast<std::size_t>(llp::Runtime::current().num_threads());

  if (periodic) {
    // Cyclic lines don't lane-batch (Sherman–Morrison couples whole-line
    // solves); run them through the scalar pencil path, the same
    // per-line fallback the plane-buffer engine uses, so the arithmetic
    // matches the other engines exactly on periodic directions.
    if (cyclic_.size() < lanes) cyclic_.resize(lanes);
    llp::doacross(
        region, shape.outer_n,
        [&](std::int64_t outer, const llp::LaneContext& ctx) {
          PencilWorkspace& ws =
              cyclic_[static_cast<std::size_t>(ctx.lane())];
          ctx.log_read(ctx.array_id("zone.q"), outer, outer + 1);
          ctx.log_write(ctx.array_id("rhs"), outer, outer + 1);
          ctx.note_scratch(&ws, ws.bytes());
          for (int inner = 0; inner < shape.inner_n; ++inner) {
            int t0, t1;
            transverse(dir, static_cast<int>(outer), inner, t0, t1);
            solve_pencil(zone, dir, t0, t1, dt, kappa_i, rhs, ws, true);
          }
        },
        llp::ForOptions{}.with_auto_tune());
    return;
  }

  if (workspaces_.size() < lanes) workspaces_.resize(lanes);
  llp::doacross(
      region, shape.outer_n,
      [&](std::int64_t outer, const llp::LaneContext& ctx) {
        SimdBatchWorkspace& ws =
            workspaces_[static_cast<std::size_t>(ctx.lane())];
        // Same outer-task-coordinate access logging as RiscSweeps: the
        // disjointness fact is the outer index each task owns.
        ctx.log_read(ctx.array_id("zone.q"), outer, outer + 1);
        ctx.log_write(ctx.array_id("rhs"), outer, outer + 1);
        ctx.note_scratch(&ws, ws.bytes());
        for (int inner = 0; inner < shape.inner_n;
             inner += kTridiagLaneWidth) {
          const int count =
              std::min(kTridiagLaneWidth, shape.inner_n - inner);
          solve_pencil_batch(zone, dir, static_cast<int>(outer), inner,
                             count, dt, kappa_i, rhs, ws);
        }
      },
      llp::ForOptions{}.with_auto_tune());
}

void VectorSweeps::ensure(int line_n, int inner_n) {
  if (line_n <= cap_line_ && inner_n <= cap_inner_) return;
  cap_line_ = std::max(cap_line_, line_n);
  cap_inner_ = std::max(cap_inner_, inner_n);
  const std::size_t plane =
      static_cast<std::size_t>(cap_line_) * static_cast<std::size_t>(cap_inner_);
  q_.resize(5 * plane);
  r_.resize(5 * plane);
  w_.resize(5 * plane);
  lam_.resize(5 * plane);
  a_.resize(plane);
  b_.resize(plane);
  c_.resize(plane);
  d_.resize(plane);
}

std::size_t VectorSweeps::scratch_bytes() const {
  return (q_.size() + r_.size() + w_.size() + lam_.size() + a_.size() +
          b_.size() + c_.size() + d_.size()) *
         sizeof(double);
}

void VectorSweeps::sweep(const Zone& zone, int dir, double dt, double kappa_i,
                         llp::Array4D<double>& rhs, llp::RegionId region,
                         bool periodic) {
  const auto start = std::chrono::steady_clock::now();
  const SweepShape shape = sweep_shape(zone, dir);
  const int n = shape.line_n;
  const int m = shape.inner_n;
  ensure(n, m);
  const int ng = Zone::kGhost;

  const double h[3] = {zone.dx(), zone.dy(), zone.dz()};
  const double inv_h = 1.0 / h[dir];
  const double hd = 0.5 * dt * inv_h;

  // Plane-buffer layout: point (i, s) at plane index i*m + s, so the
  // transverse index s is stride-1 — the vector dimension.
  auto at = [m](int i, int s) {
    return static_cast<std::size_t>(i) * m + static_cast<std::size_t>(s);
  };

  for (int outer = 0; outer < shape.outer_n; ++outer) {
    // Phase 1: gather the whole plane and project to characteristics.
    // The inner loop runs over s (the vector dimension); the gather from
    // the J/K/L-ordered zone arrays is strided — the "matrix transpose"
    // operation legacy vector codes performed.
    for (int i = 0; i < n; ++i) {
      for (int s = 0; s < m; ++s) {
        int t0, t1;
        transverse(dir, outer, s, t0, t1);
        int j, k, l;
        switch (dir) {
          case 0: j = i; k = t0; l = t1; break;
          case 1: j = t0; k = i; l = t1; break;
          default: j = t0; k = t1; l = i; break;
        }
        const double* qp = zone.q_point(j, k, l);
        const std::size_t idx = at(i, s);
        double qloc[kNumVars], rloc[kNumVars], wloc[kNumVars],
            lamloc[kNumVars];
        for (int v = 0; v < kNumVars; ++v) {
          qloc[v] = qp[v];
          rloc[v] = rhs(v, j + ng, k + ng, l + ng);
        }
        eigenvalues(dir, qloc, lamloc);
        apply_left(dir, qloc, rloc, wloc);
        for (int v = 0; v < kNumVars; ++v) {
          q_[5 * idx + v] = qloc[v];
          r_[5 * idx + v] = rloc[v];
          w_[5 * idx + v] = wloc[v];
          lam_[5 * idx + v] = lamloc[v];
        }
      }
    }

    // Phase 2: five batched tridiagonal solves, vectorized across s, with
    // the same flux-split implicit operator as the pencil engine (see
    // sweep_common.cpp) — the two variants must do identical arithmetic.
    const double hu = 2.0 * hd;
    for (int v = 0; v < kNumVars; ++v) {
      for (int i = 0; i < n; ++i) {
        const int im = (i > 0) ? i - 1 : (periodic ? n - 1 : -1);
        const int ip = (i < n - 1) ? i + 1 : (periodic ? 0 : -1);
        for (int s = 0; s < m; ++s) {
          const std::size_t idx = at(i, s);
          const double lam_0 = lam_[5 * idx + v];
          const double sr = std::max(std::abs(lam_[5 * idx + 0]),
                                     std::abs(lam_[5 * idx + 4]));
          const double eps = kappa_i * dt * inv_h * sr;
          double a = 0.0, c = 0.0;
          const double b = 1.0 + hu * std::abs(lam_0) + 2.0 * eps;
          if (im >= 0) {
            a = -hu * std::max(lam_[5 * at(im, s) + v], 0.0) - eps;
          }
          if (ip >= 0) {
            c = hu * std::min(lam_[5 * at(ip, s) + v], 0.0) - eps;
          }
          a_[idx] = a;
          b_[idx] = b;
          c_[idx] = c;
          d_[idx] = w_[5 * idx + v];
        }
      }
      const std::size_t plane = static_cast<std::size_t>(n) * m;
      if (periodic) {
        // Cyclic systems do not batch into the vector-layout Thomas; solve
        // each line with the same cyclic solver the pencil engine uses so
        // the arithmetic matches.
        std::vector<double> la(n), lb(n), lc(n), ld(n);
        for (int s = 0; s < m; ++s) {
          for (int i = 0; i < n; ++i) {
            la[i] = a_[at(i, s)];
            lb[i] = b_[at(i, s)];
            lc[i] = c_[at(i, s)];
            ld[i] = d_[at(i, s)];
          }
          solve_periodic_tridiagonal(la, lb, lc, ld);
          for (int i = 0; i < n; ++i) d_[at(i, s)] = ld[i];
        }
      } else {
        solve_tridiagonal_batch_vector_layout(
            std::span<const double>(a_.data(), plane),
            std::span<double>(b_.data(), plane),
            std::span<const double>(c_.data(), plane),
            std::span<double>(d_.data(), plane), n, m);
      }
      for (int i = 0; i < n; ++i) {
        for (int s = 0; s < m; ++s) {
          w_[5 * at(i, s) + v] = d_[at(i, s)];
        }
      }
    }

    // Phase 3: back-project the whole plane and scatter.
    for (int i = 0; i < n; ++i) {
      for (int s = 0; s < m; ++s) {
        int t0, t1;
        transverse(dir, outer, s, t0, t1);
        int j, k, l;
        switch (dir) {
          case 0: j = i; k = t0; l = t1; break;
          case 1: j = t0; k = i; l = t1; break;
          default: j = t0; k = t1; l = i; break;
        }
        const std::size_t idx = at(i, s);
        double out[kNumVars];
        apply_right(dir, &q_[5 * idx], &w_[5 * idx], out);
        for (int v = 0; v < kNumVars; ++v) {
          rhs(v, j + ng, k + ng, l + ng) = out[v];
        }
      }
    }
  }

  const std::chrono::duration<double> dtime =
      std::chrono::steady_clock::now() - start;
  llp::regions().record(region, 0, dtime.count());
}

}  // namespace f3d
