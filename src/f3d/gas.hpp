// Perfect-gas thermodynamics and flow-state conversions.
//
// Nondimensionalization follows the usual external-aerodynamics convention:
// free-stream density rho_inf = 1, free-stream sound speed a_inf = 1, so
// free-stream pressure p_inf = 1/gamma and velocity magnitude = Mach number.
//
// Conservative state vector (what the solver stores):
//   Q = [rho, rho*u, rho*v, rho*w, E],  E = p/(gamma-1) + rho*q^2/2.
#pragma once

#include <cmath>

#include "util/error.hpp"

namespace f3d {

inline constexpr int kNumVars = 5;
inline constexpr double kGamma = 1.4;

/// Primitive state at a point.
struct Prim {
  double rho = 1.0;
  double u = 0.0;
  double v = 0.0;
  double w = 0.0;
  double p = 1.0 / kGamma;
};

/// Pressure from a conservative state.
inline double pressure(const double q[kNumVars]) {
  const double rho = q[0];
  const double ke = 0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / rho;
  return (kGamma - 1.0) * (q[4] - ke);
}

/// Sound speed from a conservative state.
inline double sound_speed(const double q[kNumVars]) {
  const double p = pressure(q);
  LLP_ASSERT(p > 0.0 && q[0] > 0.0);
  return std::sqrt(kGamma * p / q[0]);
}

/// Conservative -> primitive.
inline Prim to_prim(const double q[kNumVars]) {
  Prim s;
  s.rho = q[0];
  s.u = q[1] / q[0];
  s.v = q[2] / q[0];
  s.w = q[3] / q[0];
  s.p = pressure(q);
  return s;
}

/// Primitive -> conservative.
inline void to_conservative(const Prim& s, double q[kNumVars]) {
  q[0] = s.rho;
  q[1] = s.rho * s.u;
  q[2] = s.rho * s.v;
  q[3] = s.rho * s.w;
  q[4] = s.p / (kGamma - 1.0) +
         0.5 * s.rho * (s.u * s.u + s.v * s.v + s.w * s.w);
}

/// Free-stream definition: Mach number and flow angles (degrees).
/// alpha pitches the velocity into +y, beta yaws it into +z.
struct FreeStream {
  double mach = 2.0;
  double alpha_deg = 0.0;
  double beta_deg = 0.0;

  Prim prim() const {
    const double a = alpha_deg * M_PI / 180.0;
    const double b = beta_deg * M_PI / 180.0;
    Prim s;
    s.rho = 1.0;
    s.p = 1.0 / kGamma;  // a_inf = 1
    s.u = mach * std::cos(a) * std::cos(b);
    s.v = mach * std::sin(a) * std::cos(b);
    s.w = mach * std::sin(b);
    return s;
  }

  void conservative(double q[kNumVars]) const { to_conservative(prim(), q); }
};

/// Inviscid flux vector in direction dir (0=x, 1=y, 2=z).
inline void flux(int dir, const double q[kNumVars], double f[kNumVars]) {
  const double rho = q[0];
  const double vel = q[1 + dir] / rho;  // normal velocity
  const double p = pressure(q);
  f[0] = q[1 + dir];
  f[1] = q[1] * vel;
  f[2] = q[2] * vel;
  f[3] = q[3] * vel;
  f[1 + dir] += p;
  f[4] = (q[4] + p) * vel;
}

/// Spectral radius of the flux Jacobian in direction dir: |u_n| + c.
inline double spectral_radius(int dir, const double q[kNumVars]) {
  return std::abs(q[1 + dir] / q[0]) + sound_speed(q);
}

}  // namespace f3d
