// Message-passing zonal driver (paper §8, Behr's F3D port).
//
// Runs the multi-zone solver with one rank per zone: each rank owns one
// zone (a single-zone grid whose interface faces are marked kInterface),
// and the zonal ghost exchange that MultiZoneGrid::exchange() performs
// through shared memory becomes explicit sendrecv of interface planes.
//
// The computation is identical — the integration test checks bitwise
// agreement with the shared-memory solver — but the programmer had to
// write pack/unpack buffers, neighbor bookkeeping, and tag choreography,
// which is exactly the §8 trade-off ("worked and produced a credible
// level of performance, [but] was significantly more difficult to
// implement").
#pragma once

#include <functional>
#include <vector>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"
#include "msg/message_passing.hpp"

namespace f3d {

struct MsgRunResult {
  std::vector<double> residuals;         ///< per-step global residual (RMS)
  std::vector<std::uint64_t> checksums;  ///< per-zone final checksums, rank order
  llp::msg::WorldStats traffic;
};

/// Optional per-zone initial perturbation (applied identically by the
/// shared-memory comparison run); zone_index is the zone's position in
/// the case.
using ZoneInit = std::function<void(Zone&, int zone_index)>;

/// Run `steps` of the case with one rank per zone. The returned checksums
/// are FNV digests of each zone's interior, combined in rank order; use
/// per_zone_checksums() on a shared-memory grid to compare.
MsgRunResult run_message_passing_solver(const CaseSpec& spec, int steps,
                                        const SolverConfig& base_config,
                                        const ZoneInit& init = {});

/// Order-sensitive combination of the per-zone checksums (matches
/// f3d::checksum of the equivalent multi-zone grid? No — zone digests are
/// combined, not the raw field; use the same function on both sides).
std::uint64_t combined_checksum(const std::vector<std::uint64_t>& digests);

/// Per-zone checksums of a shared-memory grid, for comparison against
/// MsgRunResult::checksums.
std::vector<std::uint64_t> per_zone_checksums(const MultiZoneGrid& grid);

}  // namespace f3d
