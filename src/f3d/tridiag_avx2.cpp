// AVX2+FMA instantiation of the lane-batched Thomas kernel.
//
// This is the only translation unit in the library compiled with
// -mavx2 -mfma (see src/f3d/CMakeLists.txt): simd::arch::Auto resolves to
// Avx2 here and to Scalar everywhere else, so the two instantiations are
// distinct types and the binary stays runnable on pre-AVX2 hosts — the
// dispatcher in tridiag.cpp only enters this kernel after
// simd::runtime_has_avx2() confirms the host executes it.
#include "f3d/tridiag_lanes.hpp"

#if !defined(LLP_SIMD_PACK_AVX2)
#error "tridiag_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

namespace f3d::detail {

void solve_tridiagonal_lanes_avx2(const double* a, double* b, const double* c,
                                  double* d, int n) {
  solve_tridiagonal_lanes_t<simd::pack<double, 4, simd::arch::Avx2>>(a, b, c,
                                                                     d, n);
}

}  // namespace f3d::detail
