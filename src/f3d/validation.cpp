#include "f3d/validation.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace f3d {

namespace {
void check_same_shape(const MultiZoneGrid& a, const MultiZoneGrid& b) {
  LLP_REQUIRE(a.num_zones() == b.num_zones(), "zone count mismatch");
  for (int z = 0; z < a.num_zones(); ++z) {
    LLP_REQUIRE(a.zone(z).jmax() == b.zone(z).jmax() &&
                    a.zone(z).kmax() == b.zone(z).kmax() &&
                    a.zone(z).lmax() == b.zone(z).lmax(),
                "zone dimension mismatch");
  }
}

template <typename Fn>
void for_all_interior(const MultiZoneGrid& g, Fn&& fn) {
  for (int zi = 0; zi < g.num_zones(); ++zi) {
    const Zone& z = g.zone(zi);
    for (int l = 0; l < z.lmax(); ++l) {
      for (int k = 0; k < z.kmax(); ++k) {
        for (int j = 0; j < z.jmax(); ++j) {
          fn(zi, j, k, l);
        }
      }
    }
  }
}
}  // namespace

std::uint64_t checksum(const MultiZoneGrid& grid) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for_all_interior(grid, [&](int zi, int j, int k, int l) {
    const double* q = grid.zone(zi).q_point(j, k, l);
    for (int n = 0; n < kNumVars; ++n) mix(q[n]);
  });
  return h;
}

double linf_diff(const MultiZoneGrid& a, const MultiZoneGrid& b) {
  check_same_shape(a, b);
  double m = 0.0;
  for_all_interior(a, [&](int zi, int j, int k, int l) {
    const double* qa = a.zone(zi).q_point(j, k, l);
    const double* qb = b.zone(zi).q_point(j, k, l);
    for (int n = 0; n < kNumVars; ++n) {
      m = std::max(m, std::abs(qa[n] - qb[n]));
    }
  });
  return m;
}

double l2_diff(const MultiZoneGrid& a, const MultiZoneGrid& b) {
  check_same_shape(a, b);
  double s = 0.0;
  std::size_t count = 0;
  for_all_interior(a, [&](int zi, int j, int k, int l) {
    const double* qa = a.zone(zi).q_point(j, k, l);
    const double* qb = b.zone(zi).q_point(j, k, l);
    for (int n = 0; n < kNumVars; ++n) {
      const double d = qa[n] - qb[n];
      s += d * d;
      ++count;
    }
  });
  return std::sqrt(s / static_cast<double>(count));
}

bool all_finite(const MultiZoneGrid& grid) {
  bool ok = true;
  for_all_interior(grid, [&](int zi, int j, int k, int l) {
    if (!ok) return;
    const double* q = grid.zone(zi).q_point(j, k, l);
    for (int n = 0; n < kNumVars; ++n) {
      if (!std::isfinite(q[n])) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

int first_divergence(const RunHistory& a, const RunHistory& b,
                     double residual_tol) {
  const std::size_t n = std::min(a.steps(), b.steps());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.checksums[i] != b.checksums[i]) return static_cast<int>(i);
    const double scale =
        std::max(std::abs(a.residuals[i]), std::abs(b.residuals[i]));
    if (scale > 0.0 &&
        std::abs(a.residuals[i] - b.residuals[i]) / scale > residual_tol) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool residual_decreasing(const RunHistory& history, double factor) {
  const std::size_t n = history.steps();
  LLP_REQUIRE(n >= 8, "need at least 8 steps to judge a trend");
  const std::size_t q = n / 4;
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < q; ++i) head += history.residuals[i];
  for (std::size_t i = n - q; i < n; ++i) tail += history.residuals[i];
  return tail < factor * head;
}

}  // namespace f3d
