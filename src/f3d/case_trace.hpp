// Measure-and-extrapolate: run a scaled case serially with instrumentation
// and produce the per-step WorkTrace of the full-size case.
//
// This is the library's public version of the method every performance
// bench uses (and EXPERIMENTS.md documents): per-point FLOPs are size-
// independent (a tested property), so each region's work scales by its
// zone's point-count ratio, and each parallelized loop's trip count is
// replaced by the full-size zone's actual dimension (L for rhs, sweep_j,
// sweep_k, update; K for sweep_l). Nothing else is extrapolated.
#pragma once

#include <string>

#include "f3d/cases.hpp"
#include "model/scaling.hpp"

namespace f3d {

/// Run `steps` of `scaled` serially with region instrumentation under
/// `region_prefix` (must be unique per call site) and return the per-step
/// trace extrapolated to `full`. Both cases must have the same zone count
/// (throws llp::Error otherwise). The global region registry's stats are
/// reset by the measurement.
llp::model::WorkTrace measure_full_size_trace(const CaseSpec& scaled,
                                              const CaseSpec& full,
                                              const std::string& region_prefix,
                                              int steps = 3);

}  // namespace f3d
