// Interface-halo packing and the stepped exchange choreography, shared by
// both message-passing rails.
//
// MultiZoneGrid::exchange() copies kGhost J-planes between adjacent zones
// through shared memory. When the neighbor lives in another rank — a
// thread (f3d/msg_driver.cpp) or a supervised worker process
// (src/cluster) — the same cells travel as explicit messages. This header
// is the single definition of what travels (pack/unpack of the kGhost
// interior planes adjacent to an interface, transverse ghosts included),
// how it is tagged (step s: rightward = 2s, leftward = 2s+1), and in what
// order a rank sends and receives so the pairwise exchange cannot
// deadlock. The exchange itself is a template over the
// llp::msg::HaloCommunicator concept, so the in-process and socket rails
// share one choreography.
#pragma once

#include <vector>

#include "f3d/zone.hpp"
#include "msg/communicator.hpp"

namespace f3d {

/// Doubles in one interface message for a zone: kGhost planes of the
/// padded transverse extent, kNumVars each.
std::size_t halo_doubles(const Zone& z);

/// Pack the kGhost interior planes adjacent to the right (JMax) or left
/// (JMin) interface, transverse ghosts included — exactly the cells
/// MultiZoneGrid::exchange() copies.
void pack_halo_face(const Zone& z, bool right, std::vector<double>& buf);

/// Unpack a neighbor's planes into this zone's JMax (right) or JMin
/// ghosts. Throws llp::Error when buf is not halo_doubles(z) long.
void unpack_halo_face(Zone& z, bool right, const std::vector<double>& buf);

/// Message tag for step `step`: rightward (to rank+1) or leftward
/// (to rank-1) interface traffic.
inline int halo_tag(int step, bool rightward) {
  return 2 * step + (rightward ? 0 : 1);
}

/// One step's interface exchange for a rank owning a contiguous J-slab:
/// `left_zone` touches the rank's left neighbor, `right_zone` its right
/// (the same zone when the rank owns one). Both sends are posted before
/// either recv — send must be non-blocking per the concept, which is what
/// makes the pairwise exchange deadlock-free.
template <llp::msg::HaloCommunicator C>
void halo_exchange_step(C& comm, int step, Zone& left_zone, Zone& right_zone,
                        std::vector<double>& sendbuf,
                        std::vector<double>& recvbuf) {
  const int r = comm.rank();
  const int n = comm.size();
  if (r + 1 < n) {
    pack_halo_face(right_zone, /*right=*/true, sendbuf);
    comm.send(r + 1, halo_tag(step, /*rightward=*/true), sendbuf);
  }
  if (r > 0) {
    pack_halo_face(left_zone, /*right=*/false, sendbuf);
    comm.send(r - 1, halo_tag(step, /*rightward=*/false), sendbuf);
  }
  if (r + 1 < n) {
    recvbuf.resize(halo_doubles(right_zone));
    comm.recv(r + 1, halo_tag(step, /*rightward=*/false), recvbuf);
    unpack_halo_face(right_zone, /*right=*/true, recvbuf);
  }
  if (r > 0) {
    recvbuf.resize(halo_doubles(left_zone));
    comm.recv(r - 1, halo_tag(step, /*rightward=*/true), recvbuf);
    unpack_halo_face(left_zone, /*right=*/false, recvbuf);
  }
}

}  // namespace f3d
