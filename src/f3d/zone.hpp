// A structured zone: one block of the multi-zone grid.
//
// Zones are uniform Cartesian boxes of jmax x kmax x lmax cell centers with
// kGhost layers of ghost cells on every face (the 4th-difference dissipation
// stencil needs two). Interior indices run 0..jmax-1; ghost indices extend
// to -kGhost and jmax+kGhost-1. The paper's test cases split the domain into
// three zones along J (the body axis), exactly like F3D's zonal grids.
#pragma once

#include <cstddef>

#include "f3d/gas.hpp"
#include "util/array.hpp"

namespace f3d {

struct ZoneDims {
  int jmax = 1;
  int kmax = 1;
  int lmax = 1;
  std::size_t points() const {
    return static_cast<std::size_t>(jmax) * kmax * lmax;
  }
};

class Zone {
public:
  static constexpr int kGhost = 2;
  /// Largest per-axis extent a zone accepts. Generous (a 2^20-cube is far
  /// beyond any buildable grid) while keeping the padded storage product
  /// provably inside std::size_t, so a fuzzer-shaped extent can never wrap
  /// the allocation size into silent out-of-bounds writes.
  static constexpr int kMaxDim = 1 << 20;

  /// Throws llp::ValidationError on degenerate dims: any extent < 1 or
  /// > kMaxDim, or a padded storage size that would overflow.
  Zone(ZoneDims dims, double dx, double dy, double dz, double x0 = 0.0,
       double y0 = 0.0, double z0 = 0.0);

  int jmax() const noexcept { return dims_.jmax; }
  int kmax() const noexcept { return dims_.kmax; }
  int lmax() const noexcept { return dims_.lmax; }
  const ZoneDims& dims() const noexcept { return dims_; }
  std::size_t interior_points() const noexcept { return dims_.points(); }

  double dx() const noexcept { return dx_; }
  double dy() const noexcept { return dy_; }
  double dz() const noexcept { return dz_; }

  /// Cell-center coordinates (interior index space).
  double x(int j) const noexcept { return x0_ + (j + 0.5) * dx_; }
  double y(int k) const noexcept { return y0_ + (k + 0.5) * dy_; }
  double z(int l) const noexcept { return z0_ + (l + 0.5) * dz_; }

  /// Conservative variable n at cell (j,k,l); ghost indices allowed.
  double& q(int n, int j, int k, int l) noexcept {
    return storage_(n, j + kGhost, k + kGhost, l + kGhost);
  }
  double q(int n, int j, int k, int l) const noexcept {
    return storage_(n, j + kGhost, k + kGhost, l + kGhost);
  }

  /// Pointer to the 5-vector at cell (j,k,l).
  double* q_point(int j, int k, int l) noexcept {
    return storage_.point(j + kGhost, k + kGhost, l + kGhost);
  }
  const double* q_point(int j, int k, int l) const noexcept {
    return storage_.point(j + kGhost, k + kGhost, l + kGhost);
  }

  /// Set every cell (ghosts included) to the free-stream state.
  void set_freestream(const FreeStream& fs);

  /// Raw storage (used by the validation checksum and the contention
  /// analyzer, which needs linear offsets).
  llp::Array4D<double>& storage() noexcept { return storage_; }
  const llp::Array4D<double>& storage() const noexcept { return storage_; }

private:
  // Runs in the member-init list, BEFORE storage_ is sized from the dims:
  // a degenerate extent must be rejected while it is still just three
  // ints, not after it has been multiplied into an allocation request.
  static ZoneDims validated(ZoneDims dims);

  ZoneDims dims_;
  double dx_, dy_, dz_;
  double x0_, y0_, z0_;
  llp::Array4D<double> storage_;
};

}  // namespace f3d
