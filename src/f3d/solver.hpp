// The implicit multi-zone solver driver.
//
// One time step, per zone:
//   1. boundary conditions + zonal exchange (serial regions);
//   2. right-hand side, doacross over L planes;
//   3. implicit J, K, L sweeps (the SweepEngine), doacross over L, L, K;
//   4. update Q += dQ, doacross over L.
//
// Every loop is registered with the region registry under
// "z<i>.<kernel>", so the flat profile, the incremental-parallelization
// switches, and the SMP simulator all see the real loop structure. For an
// engine whose registry row says !parallel_outer (the plane-vector
// baseline) the same regions are registered as serial — the untuned
// baseline. Engine identities and the registry live in f3d/engine.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/llp.hpp"
#include "f3d/multizone.hpp"
#include "f3d/rhs.hpp"
#include "f3d/sweeps.hpp"

namespace f3d {

struct RunHistory;  // validation.hpp

/// Smallest per-axis zone extent the solver accepts: the 4th-difference
/// dissipation stencil reaches Zone::kGhost cells each way, so anything
/// thinner folds the stencil back through its own ghost layers. The Zone
/// type itself stays permissive (extents >= 1) for non-stencil uses.
inline constexpr int kMinZoneDim = 2 * Zone::kGhost;

/// Graceful-degradation policy for run_protected(). A "fault" is a step
/// that threw (lane exception, watchdog timeout) or left the solution
/// non-finite (NaN/Inf in the residual or any interior cell).
struct RecoveryConfig {
  int max_recoveries = 0;       ///< rollback budget; 0 = fail on first fault
  int checkpoint_every = 10;    ///< steps between in-memory checkpoints
  double cfl_backoff = 0.5;     ///< CFL multiplier applied per recovery
  int persistent_fault_limit = 3;  ///< consecutive same-region faults before
                                   ///< falling back to the vector engine
  int health_check_every = 1;   ///< steps between finite-ness checks
};

/// The scalar time-stepping state that, together with the grid's interior,
/// fully determines the rest of a run: what a durable checkpoint records
/// beside the zone payloads and what restore() reapplies after a restart.
struct SolverState {
  int steps = 0;
  double cfl = 0.0;
  double residual = 0.0;
  double prev_residual = -1.0;
};

/// Durable-checkpoint seam under run_protected(). The solver layer knows
/// only this interface (same pattern as llp::FaultHook / LoopTuner): the
/// file format, generation rotation, and corruption fallback live in
/// src/ckpt, which implements it. All calls happen on the run loop's
/// thread.
class CheckpointHook {
public:
  virtual ~CheckpointHook() = default;

  /// Called after every healthy step with the standing state. Returns true
  /// if a durable generation was completed during this call. May throw
  /// llp::IoError (run_protected counts it as a checkpoint write failure
  /// and keeps running — the previous generation still stands); a
  /// llp::CrashError must propagate, a simulated crash is a crash.
  virtual bool on_healthy_step(const MultiZoneGrid& grid,
                               const SolverState& state) = 0;

  /// Called when a fault rolls the solver back to `step`: any state
  /// snapshotted after that step is now off the standing timeline and must
  /// be discarded, not written.
  virtual void on_rollback(int step) = 0;

  /// End of the protected run: write anything still pending (the final
  /// snapshot cannot be sealed with a next-step residual — there is no
  /// next step). Returns true if a generation was completed.
  virtual bool flush(const MultiZoneGrid& grid, const SolverState& state) = 0;
};

struct SolverConfig {
  FreeStream freestream;
  double cfl = 2.0;            ///< dt = cfl * h / (M + 1)
  RhsConfig rhs;               ///< dissipation gains
  double kappa_i = 0.25;       ///< implicit smoothing gain
  EngineKind engine = EngineKind::kPencilScalar;  ///< sweep engine (engine.hpp)
  std::string region_prefix;   ///< optional namespace for region names

  /// Steady-state CFL ramping: while the residual is falling, multiply
  /// the CFL by cfl_growth each step up to cfl_max (1.0 disables); a
  /// residual rise resets to the starting CFL. Note the AF trade-off:
  /// factorization error grows with dt, so per-step effectiveness peaks
  /// at moderate CFL — ramp when wall-clock per unit of pseudo-time
  /// matters, not when per-step residual reduction does.
  double cfl_growth = 1.0;
  double cfl_max = 10.0;

  RecoveryConfig recovery;     ///< run_protected() policy
};

/// Diagnostic record of a run_protected() invocation.
struct RunReport {
  int steps_completed = 0;     ///< total steps standing at return
  int recoveries = 0;          ///< rollbacks performed
  int checkpoints = 0;         ///< in-memory checkpoints taken
  int durable_checkpoints = 0; ///< generations completed by the hook
  int ckpt_write_failures = 0; ///< hook writes that threw llp::IoError
  double final_residual = 0.0;
  bool engine_fallback = false;  ///< degraded to the vector sweep engine
  bool failed = false;         ///< recovery budget exhausted
  std::string failure_reason;  ///< what() of the terminal fault, if failed
  std::string ckpt_failure_reason;  ///< what() of the last failed write
  std::vector<int> recovery_steps;  ///< the faulted step behind each recovery

  std::string summary() const;
};

class Solver {
public:
  /// Runs on the caller's current runtime (llp::Runtime::current() at
  /// construction — the process default unless a RuntimeScope is bound).
  Solver(MultiZoneGrid& grid, SolverConfig config);

  /// Runs on `rt`: regions are defined in rt's registry, every parallel
  /// loop dispatches to rt's pool, and step/rollback events go to rt's
  /// observers. The runtime must outlive the solver. This is the
  /// multi-tenant seam: one Runtime per job isolates tuner state, fault
  /// hooks, watchdogs, and cancellation between concurrent solves.
  Solver(MultiZoneGrid& grid, SolverConfig config, llp::Runtime& rt);

  /// Advance one time step; updates residual().
  void step();

  /// Advance n steps; returns the final residual.
  double run(int steps);

  /// Advance n steps with fault recovery: after each step a health check
  /// (finite residual, finite solution) runs, and a step that throws or
  /// fails the check is rolled back to the last in-memory checkpoint with
  /// the CFL backed off, up to config().recovery.max_recoveries times.
  /// Faults attributed to one region persistently (LaneError) trigger a
  /// fallback from the RISC to the vector sweep engine. Never throws for
  /// fault-shaped errors — the outcome is described by the returned
  /// RunReport. If `history` is non-null, per-step residual/checksum pairs
  /// are recorded and truncated on rollback so the log matches the steps
  /// that actually stand.
  RunReport run_protected(int steps, RunHistory* history = nullptr);

  /// RMS of the flux divergence R(Q) over all interior cells after the
  /// latest step (steady-state convergence monitor).
  double residual() const noexcept { return residual_; }

  /// The scalar state a durable checkpoint records beside the grid.
  SolverState state() const noexcept {
    return SolverState{steps_, cfl_, residual_, prev_residual_};
  }

  /// Reapply checkpointed scalar state (the grid is restored separately via
  /// the checkpoint loader); dt is recomputed from the restored CFL. The
  /// next step() continues the interrupted run's timeline exactly. Throws
  /// llp::Error on non-finite or non-positive CFL / negative step index.
  void restore(const SolverState& state);

  /// Install the durable-checkpoint seam consulted by run_protected()
  /// (nullptr uninstalls). The hook must outlive the runs it observes.
  void set_checkpoint_hook(CheckpointHook* hook) noexcept {
    ckpt_hook_ = hook;
  }

  int steps_taken() const noexcept { return steps_; }
  double dt() const noexcept { return dt_; }
  /// Current effective CFL (grows under cfl_growth).
  double cfl() const noexcept { return cfl_; }
  const SolverConfig& config() const noexcept { return config_; }
  MultiZoneGrid& grid() noexcept { return grid_; }
  /// The runtime this solver dispatches to.
  llp::Runtime& runtime() noexcept { return *rt_; }

  /// Analytic floating-point work of one step (all zones).
  double flops_per_step() const;

  /// Estimated main-memory traffic of one step in bytes (used for the §7
  /// NUMA-headroom check; the RISC organization's reuse keeps this low).
  double bytes_per_step() const;

private:
  void define_regions();

  MultiZoneGrid& grid_;
  SolverConfig config_;
  llp::Runtime* rt_;  ///< never null; defaults to the construction-time current
  double dt_;
  double cfl_;
  double residual_ = 0.0;
  double prev_residual_ = -1.0;
  int steps_ = 0;

  std::unique_ptr<SweepEngine> engine_;
  std::vector<llp::Array4D<double>> rhs_;  // per-zone padded work array

  struct ZoneRegions {
    llp::RegionId rhs, sweep_j, sweep_k, sweep_l, update;
  };
  std::vector<ZoneRegions> regions_;
  llp::RegionId bc_region_ = llp::kNoRegion;
  llp::RegionId exchange_region_ = llp::kNoRegion;
  CheckpointHook* ckpt_hook_ = nullptr;
};

}  // namespace f3d
