// The implicit multi-zone solver driver.
//
// One time step, per zone:
//   1. boundary conditions + zonal exchange (serial regions);
//   2. right-hand side, doacross over L planes;
//   3. implicit J, K, L sweeps (the SweepEngine), doacross over L, L, K;
//   4. update Q += dQ, doacross over L.
//
// Every loop is registered with the region registry under
// "z<i>.<kernel>", so the flat profile, the incremental-parallelization
// switches, and the SMP simulator all see the real loop structure. In
// SweepMode::kVector the same regions are registered as serial and the
// plane-buffer engine is used — the untuned baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/llp.hpp"
#include "f3d/multizone.hpp"
#include "f3d/rhs.hpp"
#include "f3d/sweeps.hpp"

namespace f3d {

enum class SweepMode {
  kVector,  ///< plane buffers, serial (legacy organization)
  kRisc,    ///< pencil buffers, outer loops parallelized
};

struct SolverConfig {
  FreeStream freestream;
  double cfl = 2.0;            ///< dt = cfl * h / (M + 1)
  RhsConfig rhs;               ///< dissipation gains
  double kappa_i = 0.25;       ///< implicit smoothing gain
  SweepMode mode = SweepMode::kRisc;
  std::string region_prefix;   ///< optional namespace for region names

  /// Steady-state CFL ramping: while the residual is falling, multiply
  /// the CFL by cfl_growth each step up to cfl_max (1.0 disables); a
  /// residual rise resets to the starting CFL. Note the AF trade-off:
  /// factorization error grows with dt, so per-step effectiveness peaks
  /// at moderate CFL — ramp when wall-clock per unit of pseudo-time
  /// matters, not when per-step residual reduction does.
  double cfl_growth = 1.0;
  double cfl_max = 10.0;
};

class Solver {
public:
  Solver(MultiZoneGrid& grid, SolverConfig config);

  /// Advance one time step; updates residual().
  void step();

  /// Advance n steps; returns the final residual.
  double run(int steps);

  /// RMS of the flux divergence R(Q) over all interior cells after the
  /// latest step (steady-state convergence monitor).
  double residual() const noexcept { return residual_; }

  int steps_taken() const noexcept { return steps_; }
  double dt() const noexcept { return dt_; }
  /// Current effective CFL (grows under cfl_growth).
  double cfl() const noexcept { return cfl_; }
  const SolverConfig& config() const noexcept { return config_; }
  MultiZoneGrid& grid() noexcept { return grid_; }

  /// Analytic floating-point work of one step (all zones).
  double flops_per_step() const;

  /// Estimated main-memory traffic of one step in bytes (used for the §7
  /// NUMA-headroom check; the RISC organization's reuse keeps this low).
  double bytes_per_step() const;

private:
  void define_regions();

  MultiZoneGrid& grid_;
  SolverConfig config_;
  double dt_;
  double cfl_;
  double residual_ = 0.0;
  double prev_residual_ = -1.0;
  int steps_ = 0;

  std::unique_ptr<SweepEngine> engine_;
  std::vector<llp::Array4D<double>> rhs_;  // per-zone padded work array

  struct ZoneRegions {
    llp::RegionId rhs, sweep_j, sweep_k, sweep_l, update;
  };
  std::vector<ZoneRegions> regions_;
  llp::RegionId bc_region_ = llp::kNoRegion;
  llp::RegionId exchange_region_ = llp::kNoRegion;
};

}  // namespace f3d
