#include "f3d/tridiag.hpp"

#include <vector>

#include "f3d/tridiag_lanes.hpp"
#include "simd/detect.hpp"
#include "util/error.hpp"

namespace f3d {

void solve_tridiagonal_lanes(const double* a, double* b, const double* c,
                             double* d, int n) {
  LLP_REQUIRE(n >= 1, "empty system");
#if defined(LLP_F3D_HAVE_AVX2_TU)
  if (simd::runtime_has_avx2()) {
    detail::solve_tridiagonal_lanes_avx2(a, b, c, d, n);
    return;
  }
#endif
  detail::solve_tridiagonal_lanes_t<
      simd::pack<double, kTridiagLaneWidth, simd::arch::Scalar>>(a, b, c, d,
                                                                 n);
}

std::string_view tridiag_lanes_kernel() {
#if defined(LLP_F3D_HAVE_AVX2_TU)
  if (simd::runtime_has_avx2()) return "avx2";
#endif
  return "generic";
}

void solve_tridiagonal(std::span<const double> a, std::span<double> b,
                       std::span<const double> c, std::span<double> d) {
  const std::size_t n = d.size();
  LLP_REQUIRE(n >= 1, "empty system");
  LLP_REQUIRE(a.size() == n && b.size() == n && c.size() == n,
              "span size mismatch");
  // Forward elimination.
  for (std::size_t i = 1; i < n; ++i) {
    const double m = a[i] / b[i - 1];
    b[i] -= m * c[i - 1];
    d[i] -= m * d[i - 1];
  }
  // Back substitution.
  d[n - 1] /= b[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    d[i] = (d[i] - c[i] * d[i + 1]) / b[i];
  }
}

void solve_tridiagonal(const llp::AccessSpan<const double>& a,
                       const llp::AccessSpan<double>& b,
                       const llp::AccessSpan<const double>& c,
                       const llp::AccessSpan<double>& d) {
  const std::int64_t n = d.size();
  LLP_REQUIRE(n >= 1, "empty system");
  LLP_REQUIRE(a.size() == n && b.size() == n && c.size() == n,
              "span size mismatch");
  // Log whole-system intervals once, then run the raw-pointer kernel: the
  // Thomas recurrence touches every element anyway, so block granularity
  // loses nothing and costs four on_access calls per solve.
  const std::size_t un = static_cast<std::size_t>(n);
  std::span<const double> as(a.read_block(0, n), un);
  std::span<const double> cs(c.read_block(0, n), un);
  b.read_block(0, n);
  d.read_block(0, n);
  std::span<double> bs(b.write_block(0, n), un);
  std::span<double> ds(d.write_block(0, n), un);
  solve_tridiagonal(as, bs, cs, ds);
}

void solve_tridiagonal_batch_vector_layout(std::span<const double> a,
                                           std::span<double> b,
                                           std::span<const double> c,
                                           std::span<double> d, int n, int m) {
  LLP_REQUIRE(n >= 1 && m >= 1, "empty batch");
  const std::size_t total = static_cast<std::size_t>(n) * m;
  LLP_REQUIRE(a.size() == total && b.size() == total && c.size() == total &&
                  d.size() == total,
              "span size mismatch");
  auto at = [m](int i, int s) {
    return static_cast<std::size_t>(i) * m + static_cast<std::size_t>(s);
  };
  // Forward elimination: the recurrence runs over i, the inner loop over
  // systems s is independent (this is the loop a vector compiler targets).
  for (int i = 1; i < n; ++i) {
    for (int s = 0; s < m; ++s) {
      const double w = a[at(i, s)] / b[at(i - 1, s)];
      b[at(i, s)] -= w * c[at(i - 1, s)];
      d[at(i, s)] -= w * d[at(i - 1, s)];
    }
  }
  for (int s = 0; s < m; ++s) {
    d[at(n - 1, s)] /= b[at(n - 1, s)];
  }
  for (int i = n - 2; i >= 0; --i) {
    for (int s = 0; s < m; ++s) {
      d[at(i, s)] = (d[at(i, s)] - c[at(i, s)] * d[at(i + 1, s)]) / b[at(i, s)];
    }
  }
}

void solve_periodic_tridiagonal(std::span<const double> a, std::span<double> b,
                                std::span<const double> c,
                                std::span<double> d) {
  const std::size_t n = d.size();
  LLP_REQUIRE(n >= 3, "periodic system needs n >= 3");
  LLP_REQUIRE(a.size() == n && b.size() == n && c.size() == n,
              "span size mismatch");
  // Sherman–Morrison: write the cyclic matrix as T + alpha * u v^T with
  // u = (gamma, 0, ..., 0, a[0])?  Use the standard construction:
  //   gamma = -b[0];  modified diagonal b'[0] = b[0] - gamma,
  //   b'[n-1] = b[n-1] - a[0]*c[n-1]/gamma,
  // solve T x1 = d and T x2 = u, then combine.
  const double gamma = -b[0];
  std::vector<double> bb(b.begin(), b.end());
  bb[0] = b[0] - gamma;
  bb[n - 1] = b[n - 1] - a[0] * c[n - 1] / gamma;

  std::vector<double> u(n, 0.0);
  u[0] = gamma;
  u[n - 1] = c[n - 1];

  std::vector<double> b1(bb);
  std::vector<double> x1(d.begin(), d.end());
  solve_tridiagonal(a, b1, c, x1);

  std::vector<double> b2(bb);
  solve_tridiagonal(a, b2, c, u);  // u now holds x2

  const double vx1 = x1[0] + a[0] / gamma * x1[n - 1];
  const double vx2 = 1.0 + u[0] + a[0] / gamma * u[n - 1];
  LLP_REQUIRE(vx2 != 0.0, "singular periodic system");
  const double factor = vx1 / vx2;
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = x1[i] - factor * u[i];
  }
}

}  // namespace f3d
