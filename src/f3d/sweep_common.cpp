#include "f3d/sweep_common.hpp"

#include <cmath>

#include "f3d/eigen.hpp"
#include "f3d/tridiag.hpp"
#include "simd/batch.hpp"
#include "util/error.hpp"

namespace f3d {

void SimdBatchWorkspace::ensure(int n) {
  if (n <= capacity) return;
  constexpr std::size_t W = kTridiagLaneWidth;
  const std::size_t nn = static_cast<std::size_t>(n);
  q.resize(W * 5 * nn);
  r.resize(W * 5 * nn);
  w.resize(W * 5 * nn);
  lam.resize(W * 5 * nn);
  a.resize(nn * W);
  b.resize(nn * W);
  c.resize(nn * W);
  d.resize(nn * W);
  capacity = n;
}

void PencilWorkspace::ensure(int n) {
  if (n <= capacity) return;
  const std::size_t nn = static_cast<std::size_t>(n);
  q.resize(5 * nn);
  r.resize(5 * nn);
  w.resize(5 * nn);
  lam.resize(5 * nn);
  a.resize(nn);
  b.resize(nn);
  c.resize(nn);
  d.resize(nn);
  capacity = n;
}

SweepShape sweep_shape(const Zone& zone, int dir) {
  SweepShape s;
  switch (dir) {
    case 0:  // J sweep: lines along j, parallel over l, inner k
      s.line_n = zone.jmax();
      s.outer_n = zone.lmax();
      s.inner_n = zone.kmax();
      break;
    case 1:  // K sweep: lines along k, parallel over l, inner j
      s.line_n = zone.kmax();
      s.outer_n = zone.lmax();
      s.inner_n = zone.jmax();
      break;
    case 2:  // L sweep: lines along l, parallel over k, inner j
      s.line_n = zone.lmax();
      s.outer_n = zone.kmax();
      s.inner_n = zone.jmax();
      break;
    default:
      throw llp::Error("bad sweep direction");
  }
  return s;
}

void solve_pencil(const Zone& zone, int dir, int t0, int t1, double dt,
                  double kappa_i, llp::Array4D<double>& rhs,
                  PencilWorkspace& ws, bool periodic) {
  const SweepShape shape = sweep_shape(zone, dir);
  const int n = shape.line_n;
  ws.ensure(n);
  const int ng = Zone::kGhost;
  // The rhs work array must share the zone's padded layout: the line walk
  // below uses one stride for both.
  LLP_ASSERT(rhs.nvar() == kNumVars && rhs.jmax() == zone.jmax() + 2 * ng &&
             rhs.kmax() == zone.kmax() + 2 * ng &&
             rhs.lmax() == zone.lmax() + 2 * ng);

  const double h[3] = {zone.dx(), zone.dy(), zone.dz()};
  const double inv_h = 1.0 / h[dir];
  const double hd = 0.5 * dt * inv_h;  // central-difference weight

  // First cell of the line and the element stride between consecutive
  // cells along the sweep direction (both Q and the rhs array share the
  // padded Fortran layout, so one stride serves both).
  int j0, k0, l0;
  switch (dir) {
    case 0: j0 = 0; k0 = t0; l0 = t1; break;
    case 1: j0 = t0; k0 = 0; l0 = t1; break;
    default: j0 = t0; k0 = t1; l0 = 0; break;
  }
  const llp::Array4D<double>& qarr = zone.storage();
  const std::size_t base =
      qarr.index(0, j0 + ng, k0 + ng, l0 + ng);
  std::size_t step = 0;
  switch (dir) {
    case 0: step = qarr.index(0, j0 + ng + 1, k0 + ng, l0 + ng) - base; break;
    case 1: step = qarr.index(0, j0 + ng, k0 + ng + 1, l0 + ng) - base; break;
    default:
      step = qarr.index(0, j0 + ng, k0 + ng, l0 + ng + 1) - base;
      break;
  }
  const double* qline = qarr.data() + base;
  double* rline = rhs.data() + base;

  // Gather state + rhs, project to characteristic variables.
  for (int i = 0; i < n; ++i) {
    const double* qp = qline + static_cast<std::size_t>(i) * step;
    const double* rp = rline + static_cast<std::size_t>(i) * step;
    double* qi = &ws.q[5 * static_cast<std::size_t>(i)];
    double* ri = &ws.r[5 * static_cast<std::size_t>(i)];
    for (int m = 0; m < kNumVars; ++m) {
      qi[m] = qp[m];
      ri[m] = rp[m];
    }
    eigenvalues(dir, qi, &ws.lam[5 * static_cast<std::size_t>(i)]);
    apply_left(dir, qi, ri, &ws.w[5 * static_cast<std::size_t>(i)]);
  }

  // Five scalar tridiagonal solves with the flux-split (upwind) implicit
  // operator: lambda+ differenced backward, lambda- forward. This is the
  // "partially flux-split" implicit treatment of Steger's F3D — a central
  // implicit operator makes 3-factor approximate factorization weakly
  // unstable in 3-D, while the split operator is an M-matrix and damps.
  // The steady state (RHS == 0) is unaffected by the LHS choice.
  //
  // Boundary rows must stay implicit too: an identity (fully explicit)
  // boundary row reintroduces the explicit stability limit at every line
  // end. Non-periodic lines couple one-sidedly inward, taking the ghost
  // increment as zero; periodic lines wrap and use the cyclic solver.
  const double hu = 2.0 * hd;  // dt / h: first-order upwind weight
  for (int m = 0; m < kNumVars; ++m) {
    for (int i = 0; i < n; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const int im = (i > 0) ? i - 1 : (periodic ? n - 1 : -1);
      const int ip = (i < n - 1) ? i + 1 : (periodic ? 0 : -1);
      const double lam_0 = ws.lam[5 * ii + m];
      const double sr = std::max(std::abs(ws.lam[5 * ii + 0]),
                                 std::abs(ws.lam[5 * ii + 4]));
      const double eps = kappa_i * dt * inv_h * sr;
      double a = 0.0, c = 0.0;
      double b = 1.0 + hu * std::abs(lam_0) + 2.0 * eps;
      if (im >= 0) {
        const double lam_m1_p =
            std::max(ws.lam[5 * static_cast<std::size_t>(im) + m], 0.0);
        a = -hu * lam_m1_p - eps;
      }
      if (ip >= 0) {
        const double lam_p1_m =
            std::min(ws.lam[5 * static_cast<std::size_t>(ip) + m], 0.0);
        c = hu * lam_p1_m - eps;
      }
      ws.a[ii] = a;
      ws.b[ii] = b;
      ws.c[ii] = c;
      ws.d[ii] = ws.w[5 * ii + m];
    }
    if (periodic) {
      solve_periodic_tridiagonal(std::span<const double>(ws.a.data(), n),
                                 std::span<double>(ws.b.data(), n),
                                 std::span<const double>(ws.c.data(), n),
                                 std::span<double>(ws.d.data(), n));
    } else {
      solve_tridiagonal(std::span<const double>(ws.a.data(), n),
                        std::span<double>(ws.b.data(), n),
                        std::span<const double>(ws.c.data(), n),
                        std::span<double>(ws.d.data(), n));
    }
    for (int i = 0; i < n; ++i) {
      ws.w[5 * static_cast<std::size_t>(i) + m] =
          ws.d[static_cast<std::size_t>(i)];
    }
  }

  // Project back and scatter.
  for (int i = 0; i < n; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    double out[kNumVars];
    apply_right(dir, &ws.q[5 * ii], &ws.w[5 * ii], out);
    double* rp = rline + ii * step;
    for (int m = 0; m < kNumVars; ++m) rp[m] = out[m];
  }
}

void solve_pencil_batch(const Zone& zone, int dir, int outer, int inner0,
                        int count, double dt, double kappa_i,
                        llp::Array4D<double>& rhs, SimdBatchWorkspace& ws) {
  constexpr int W = kTridiagLaneWidth;
  LLP_ASSERT(count >= 1 && count <= W);
  const SweepShape shape = sweep_shape(zone, dir);
  const int n = shape.line_n;
  ws.ensure(n);
  const int ng = Zone::kGhost;
  LLP_ASSERT(rhs.nvar() == kNumVars && rhs.jmax() == zone.jmax() + 2 * ng &&
             rhs.kmax() == zone.kmax() + 2 * ng &&
             rhs.lmax() == zone.lmax() + 2 * ng);

  const double h[3] = {zone.dx(), zone.dy(), zone.dz()};
  const double inv_h = 1.0 / h[dir];
  const double hu = dt * inv_h;  // first-order upwind weight

  const llp::Array4D<double>& qarr = zone.storage();
  const std::size_t n5 = 5 * static_cast<std::size_t>(n);

  // Gather each pencil exactly as solve_pencil does — same line walk, same
  // per-point projection — into the workspace's per-pencil slices. The
  // task coordinates follow the engines' convention: t0 = inner index,
  // t1 = outer index (see sweeps.cpp).
  double* rline[W] = {};
  std::size_t step = 0;
  for (int p = 0; p < count; ++p) {
    const int t0 = inner0 + p;
    const int t1 = outer;
    int j0, k0, l0;
    switch (dir) {
      case 0: j0 = 0; k0 = t0; l0 = t1; break;
      case 1: j0 = t0; k0 = 0; l0 = t1; break;
      default: j0 = t0; k0 = t1; l0 = 0; break;
    }
    const std::size_t base = qarr.index(0, j0 + ng, k0 + ng, l0 + ng);
    if (p == 0) {
      switch (dir) {
        case 0:
          step = qarr.index(0, j0 + ng + 1, k0 + ng, l0 + ng) - base;
          break;
        case 1:
          step = qarr.index(0, j0 + ng, k0 + ng + 1, l0 + ng) - base;
          break;
        default:
          step = qarr.index(0, j0 + ng, k0 + ng, l0 + ng + 1) - base;
          break;
      }
    }
    const double* qline = qarr.data() + base;
    rline[p] = rhs.data() + base;
    const std::size_t off = static_cast<std::size_t>(p) * n5;
    for (int i = 0; i < n; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const double* qp = qline + ii * step;
      const double* rp = rline[p] + ii * step;
      double* qi = &ws.q[off + 5 * ii];
      double* ri = &ws.r[off + 5 * ii];
      for (int m = 0; m < kNumVars; ++m) {
        qi[m] = qp[m];
        ri[m] = rp[m];
      }
      eigenvalues(dir, qi, &ws.lam[off + 5 * ii]);
      apply_left(dir, qi, ri, &ws.w[off + 5 * ii]);
    }
  }

  // Five lane-batched tridiagonal solves: the coefficient build is the
  // same flux-split operator as solve_pencil, written straight into lane
  // layout (element i of pencil p at i*W + p); tail lanes replicate the
  // last real pencil so the kernel always runs well-conditioned full-width
  // batches. Only the Thomas elimination itself runs through simd packs.
  for (int m = 0; m < kNumVars; ++m) {
    for (int i = 0; i < n; ++i) {
      const std::size_t row = static_cast<std::size_t>(i) * W;
      const int im = (i > 0) ? i - 1 : -1;
      const int ip = (i < n - 1) ? i + 1 : -1;
      for (int p = 0; p < count; ++p) {
        const double* lam_p = &ws.lam[static_cast<std::size_t>(p) * n5];
        const double lam_0 = lam_p[5 * i + m];
        const double sr =
            std::max(std::abs(lam_p[5 * i + 0]), std::abs(lam_p[5 * i + 4]));
        const double eps = kappa_i * dt * inv_h * sr;
        double av = 0.0, cv = 0.0;
        const double bv = 1.0 + hu * std::abs(lam_0) + 2.0 * eps;
        if (im >= 0) av = -hu * std::max(lam_p[5 * im + m], 0.0) - eps;
        if (ip >= 0) cv = hu * std::min(lam_p[5 * ip + m], 0.0) - eps;
        ws.a[row + static_cast<std::size_t>(p)] = av;
        ws.b[row + static_cast<std::size_t>(p)] = bv;
        ws.c[row + static_cast<std::size_t>(p)] = cv;
      }
      for (int p = count; p < W; ++p) {
        ws.a[row + static_cast<std::size_t>(p)] = ws.a[row + count - 1];
        ws.b[row + static_cast<std::size_t>(p)] = ws.b[row + count - 1];
        ws.c[row + static_cast<std::size_t>(p)] = ws.c[row + count - 1];
      }
    }
    // d: transpose variable m of every pencil's characteristic vector into
    // lanes (stride 5 within a pencil), solve, transpose back.
    const double* wsrc[W];
    double* wdst[W];
    for (int p = 0; p < count; ++p) {
      wsrc[p] = &ws.w[static_cast<std::size_t>(p) * n5 + m];
      wdst[p] = &ws.w[static_cast<std::size_t>(p) * n5 + m];
    }
    simd::interleave<W>(wsrc, count, n, ws.d.data(), 5);
    solve_tridiagonal_lanes(ws.a.data(), ws.b.data(), ws.c.data(),
                            ws.d.data(), n);
    simd::deinterleave<W>(ws.d.data(), count, n, wdst, 5);
  }

  // Project back and scatter each real pencil (padding lanes discarded).
  for (int p = 0; p < count; ++p) {
    const std::size_t off = static_cast<std::size_t>(p) * n5;
    for (int i = 0; i < n; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      double out[kNumVars];
      apply_right(dir, &ws.q[off + 5 * ii], &ws.w[off + 5 * ii], out);
      double* rp = rline[p] + ii * step;
      for (int m = 0; m < kNumVars; ++m) rp[m] = out[m];
    }
  }
}

}  // namespace f3d
