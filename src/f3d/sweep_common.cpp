#include "f3d/sweep_common.hpp"

#include <cmath>

#include "f3d/eigen.hpp"
#include "f3d/tridiag.hpp"
#include "util/error.hpp"

namespace f3d {

void PencilWorkspace::ensure(int n) {
  if (n <= capacity) return;
  const std::size_t nn = static_cast<std::size_t>(n);
  q.resize(5 * nn);
  r.resize(5 * nn);
  w.resize(5 * nn);
  lam.resize(5 * nn);
  a.resize(nn);
  b.resize(nn);
  c.resize(nn);
  d.resize(nn);
  capacity = n;
}

SweepShape sweep_shape(const Zone& zone, int dir) {
  SweepShape s;
  switch (dir) {
    case 0:  // J sweep: lines along j, parallel over l, inner k
      s.line_n = zone.jmax();
      s.outer_n = zone.lmax();
      s.inner_n = zone.kmax();
      break;
    case 1:  // K sweep: lines along k, parallel over l, inner j
      s.line_n = zone.kmax();
      s.outer_n = zone.lmax();
      s.inner_n = zone.jmax();
      break;
    case 2:  // L sweep: lines along l, parallel over k, inner j
      s.line_n = zone.lmax();
      s.outer_n = zone.kmax();
      s.inner_n = zone.jmax();
      break;
    default:
      throw llp::Error("bad sweep direction");
  }
  return s;
}

void solve_pencil(const Zone& zone, int dir, int t0, int t1, double dt,
                  double kappa_i, llp::Array4D<double>& rhs,
                  PencilWorkspace& ws, bool periodic) {
  const SweepShape shape = sweep_shape(zone, dir);
  const int n = shape.line_n;
  ws.ensure(n);
  const int ng = Zone::kGhost;
  // The rhs work array must share the zone's padded layout: the line walk
  // below uses one stride for both.
  LLP_ASSERT(rhs.nvar() == kNumVars && rhs.jmax() == zone.jmax() + 2 * ng &&
             rhs.kmax() == zone.kmax() + 2 * ng &&
             rhs.lmax() == zone.lmax() + 2 * ng);

  const double h[3] = {zone.dx(), zone.dy(), zone.dz()};
  const double inv_h = 1.0 / h[dir];
  const double hd = 0.5 * dt * inv_h;  // central-difference weight

  // First cell of the line and the element stride between consecutive
  // cells along the sweep direction (both Q and the rhs array share the
  // padded Fortran layout, so one stride serves both).
  int j0, k0, l0;
  switch (dir) {
    case 0: j0 = 0; k0 = t0; l0 = t1; break;
    case 1: j0 = t0; k0 = 0; l0 = t1; break;
    default: j0 = t0; k0 = t1; l0 = 0; break;
  }
  const llp::Array4D<double>& qarr = zone.storage();
  const std::size_t base =
      qarr.index(0, j0 + ng, k0 + ng, l0 + ng);
  std::size_t step = 0;
  switch (dir) {
    case 0: step = qarr.index(0, j0 + ng + 1, k0 + ng, l0 + ng) - base; break;
    case 1: step = qarr.index(0, j0 + ng, k0 + ng + 1, l0 + ng) - base; break;
    default:
      step = qarr.index(0, j0 + ng, k0 + ng, l0 + ng + 1) - base;
      break;
  }
  const double* qline = qarr.data() + base;
  double* rline = rhs.data() + base;

  // Gather state + rhs, project to characteristic variables.
  for (int i = 0; i < n; ++i) {
    const double* qp = qline + static_cast<std::size_t>(i) * step;
    const double* rp = rline + static_cast<std::size_t>(i) * step;
    double* qi = &ws.q[5 * static_cast<std::size_t>(i)];
    double* ri = &ws.r[5 * static_cast<std::size_t>(i)];
    for (int m = 0; m < kNumVars; ++m) {
      qi[m] = qp[m];
      ri[m] = rp[m];
    }
    eigenvalues(dir, qi, &ws.lam[5 * static_cast<std::size_t>(i)]);
    apply_left(dir, qi, ri, &ws.w[5 * static_cast<std::size_t>(i)]);
  }

  // Five scalar tridiagonal solves with the flux-split (upwind) implicit
  // operator: lambda+ differenced backward, lambda- forward. This is the
  // "partially flux-split" implicit treatment of Steger's F3D — a central
  // implicit operator makes 3-factor approximate factorization weakly
  // unstable in 3-D, while the split operator is an M-matrix and damps.
  // The steady state (RHS == 0) is unaffected by the LHS choice.
  //
  // Boundary rows must stay implicit too: an identity (fully explicit)
  // boundary row reintroduces the explicit stability limit at every line
  // end. Non-periodic lines couple one-sidedly inward, taking the ghost
  // increment as zero; periodic lines wrap and use the cyclic solver.
  const double hu = 2.0 * hd;  // dt / h: first-order upwind weight
  for (int m = 0; m < kNumVars; ++m) {
    for (int i = 0; i < n; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const int im = (i > 0) ? i - 1 : (periodic ? n - 1 : -1);
      const int ip = (i < n - 1) ? i + 1 : (periodic ? 0 : -1);
      const double lam_0 = ws.lam[5 * ii + m];
      const double sr = std::max(std::abs(ws.lam[5 * ii + 0]),
                                 std::abs(ws.lam[5 * ii + 4]));
      const double eps = kappa_i * dt * inv_h * sr;
      double a = 0.0, c = 0.0;
      double b = 1.0 + hu * std::abs(lam_0) + 2.0 * eps;
      if (im >= 0) {
        const double lam_m1_p =
            std::max(ws.lam[5 * static_cast<std::size_t>(im) + m], 0.0);
        a = -hu * lam_m1_p - eps;
      }
      if (ip >= 0) {
        const double lam_p1_m =
            std::min(ws.lam[5 * static_cast<std::size_t>(ip) + m], 0.0);
        c = hu * lam_p1_m - eps;
      }
      ws.a[ii] = a;
      ws.b[ii] = b;
      ws.c[ii] = c;
      ws.d[ii] = ws.w[5 * ii + m];
    }
    if (periodic) {
      solve_periodic_tridiagonal(std::span<const double>(ws.a.data(), n),
                                 std::span<double>(ws.b.data(), n),
                                 std::span<const double>(ws.c.data(), n),
                                 std::span<double>(ws.d.data(), n));
    } else {
      solve_tridiagonal(std::span<const double>(ws.a.data(), n),
                        std::span<double>(ws.b.data(), n),
                        std::span<const double>(ws.c.data(), n),
                        std::span<double>(ws.d.data(), n));
    }
    for (int i = 0; i < n; ++i) {
      ws.w[5 * static_cast<std::size_t>(i) + m] =
          ws.d[static_cast<std::size_t>(i)];
    }
  }

  // Project back and scatter.
  for (int i = 0; i < n; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    double out[kNumVars];
    apply_right(dir, &ws.q[5 * ii], &ws.w[5 * ii], out);
    double* rp = rline + ii * step;
    for (int m = 0; m < kNumVars; ++m) rp[m] = out[m];
  }
}

}  // namespace f3d
