// Engine selection: the autotuner's third axis.
//
// The PR 1 tuner searches {schedule} x {chunk} x {num_threads} per region;
// the engine choice is the axis above all of those — it decides which
// loops exist at all. select_engine() closes it the same way the loop
// tuner closes the others: measure each registered engine on the actual
// grid (one J-sweep over the largest zone, best of `repeats`), commit the
// winner to the TuningDb under an "engine.<prefix>" key, and short-circuit
// the probe entirely on the next run with a matching key — same machine
// fingerprint, same trip bucket, decision reused verbatim.
#pragma once

#include "f3d/engine.hpp"
#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"

namespace llp::tune {
class Tuner;
}

namespace f3d {

/// Outcome of an engine-axis decision.
struct EngineChoice {
  EngineKind kind = EngineKind::kPencilScalar;
  double seconds = 0.0;  ///< winning probe time (or the DB entry's record)
  bool from_db = false;  ///< reused a persisted decision, no probe run
};

/// Pick the fastest registered engine for `grid` under `config`.
///
/// With a tuner: a TuningDb hit whose engine column parses wins without
/// running a probe, and a fresh measurement is committed back so later
/// runs (and f3d_run --engine=auto) inherit it. Without a tuner the probe
/// still runs — the decision just isn't persisted. The probe mutates only
/// its own scratch rhs array; `grid` is read, never written.
EngineChoice select_engine(const MultiZoneGrid& grid,
                           const SolverConfig& config,
                           llp::tune::Tuner* tuner = nullptr,
                           int repeats = 2);

}  // namespace f3d
