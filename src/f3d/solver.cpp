#include "f3d/solver.hpp"

#include <chrono>
#include <cmath>

#include "tune/tuner.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace f3d {

namespace {
// Analytic per-point traffic estimates (bytes/step) for the NUMA check.
// The pencil organization re-reads Q once per kernel and writes dQ once;
// scratch stays in cache. These are deliberately coarse — the paper's
// comparison only needs the order of magnitude (68 MB/s vs 135+ MB/s).
constexpr double kBytesPerPointRhs = 3.0 * kNumVars * 8.0;
constexpr double kBytesPerPointSweep = 2.0 * kNumVars * 8.0;
constexpr double kBytesPerPointUpdate = 2.0 * kNumVars * 8.0;
constexpr double kFlopsPerPointUpdate = 1.0 * kNumVars;
}  // namespace

Solver::Solver(MultiZoneGrid& grid, SolverConfig config)
    : grid_(grid), config_(std::move(config)) {
  // Install the process-global autotuner when LLP_TUNE=1 (no-op otherwise)
  // so every auto-marked loop below self-optimizes over the run.
  llp::tune::init_from_env();
  LLP_REQUIRE(config_.cfl > 0.0, "cfl must be positive");
  LLP_REQUIRE(config_.kappa_i >= 0.0, "kappa_i must be nonnegative");
  LLP_REQUIRE(config_.cfl_growth >= 1.0, "cfl_growth must be >= 1");
  LLP_REQUIRE(config_.cfl_max >= config_.cfl,
              "cfl_max must be >= the starting cfl");
  cfl_ = config_.cfl;
  dt_ = cfl_ * grid_.spacing() / (config_.freestream.mach + 1.0);

  if (config_.mode == SweepMode::kRisc) {
    engine_ = std::make_unique<RiscSweeps>();
  } else {
    engine_ = std::make_unique<VectorSweeps>();
  }

  rhs_.reserve(static_cast<std::size_t>(grid_.num_zones()));
  for (int z = 0; z < grid_.num_zones(); ++z) {
    const Zone& zn = grid_.zone(z);
    rhs_.emplace_back(kNumVars, zn.jmax() + 2 * Zone::kGhost,
                      zn.kmax() + 2 * Zone::kGhost,
                      zn.lmax() + 2 * Zone::kGhost);
  }
  define_regions();
}

void Solver::define_regions() {
  auto& reg = llp::regions();
  const auto kind = config_.mode == SweepMode::kRisc
                        ? llp::RegionKind::kParallelLoop
                        : llp::RegionKind::kSerial;
  const std::string pre =
      config_.region_prefix.empty() ? "" : config_.region_prefix + ".";
  regions_.clear();
  for (int z = 0; z < grid_.num_zones(); ++z) {
    const std::string base = pre + "z" + std::to_string(z) + ".";
    ZoneRegions r;
    r.rhs = reg.define(base + "rhs", kind);
    r.sweep_j = reg.define(base + "sweep_j", kind);
    r.sweep_k = reg.define(base + "sweep_k", kind);
    r.sweep_l = reg.define(base + "sweep_l", kind);
    r.update = reg.define(base + "update", kind);
    regions_.push_back(r);
  }
  bc_region_ = reg.define(pre + "bc", llp::RegionKind::kSerial);
  exchange_region_ = reg.define(pre + "exchange", llp::RegionKind::kSerial);
}

void Solver::step() {
  auto& reg = llp::regions();

  // Boundary conditions and zonal exchange: cheap, deliberately serial
  // (Table 2: a face offers ~1/LMAX of the interior's work per sync).
  // Their work is mostly copies; attribute a small equivalent-FLOP cost so
  // the scaling model carries an honest (tiny) Amdahl tail.
  {
    const auto t0 = std::chrono::steady_clock::now();
    double face_points = 0.0;
    for (int z = 0; z < grid_.num_zones(); ++z) {
      const Zone& zn = grid_.zone(z);
      apply_boundary_conditions(grid_.zone(z), grid_.bcs(z),
                                config_.freestream);
      face_points += 2.0 * (static_cast<double>(zn.jmax()) * zn.kmax() +
                            static_cast<double>(zn.jmax()) * zn.lmax() +
                            static_cast<double>(zn.kmax()) * zn.lmax());
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reg.record(bc_region_, 0, dt.count());
    reg.add_flops(bc_region_, face_points * Zone::kGhost * 2.0);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    grid_.exchange();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reg.record(exchange_region_, 0, dt.count());
    double iface_points = 0.0;
    for (int z = 0; z + 1 < grid_.num_zones(); ++z) {
      const Zone& zn = grid_.zone(z);
      iface_points += static_cast<double>(zn.kmax()) * zn.lmax();
    }
    reg.add_flops(exchange_region_, iface_points * Zone::kGhost * 2.0);
  }

  double sumsq = 0.0;
  std::size_t total_points = 0;

  for (int z = 0; z < grid_.num_zones(); ++z) {
    Zone& zone = grid_.zone(z);
    llp::Array4D<double>& rhs = rhs_[static_cast<std::size_t>(z)];
    const ZoneRegions& rg = regions_[static_cast<std::size_t>(z)];
    const double pts = static_cast<double>(zone.interior_points());
    total_points += zone.interior_points();

    // Right-hand side, one task per L plane, with the residual reduced
    // across lanes. Auto mode: tuned schedule/threads when LLP_TUNE=1.
    llp::ForOptions opts;
    opts.region = rg.rhs;
    opts.auto_tune = true;
    sumsq += llp::parallel_reduce<double>(
        0, zone.lmax(), 0.0, [](double a, double b) { return a + b; },
        [&](std::int64_t l, double& acc) {
          compute_rhs_plane(zone, static_cast<int>(l), dt_, config_.rhs, rhs);
          acc += rhs_plane_sumsq(zone, static_cast<int>(l), rhs);
        },
        opts);
    const double rhs_flops =
        kFlopsPerPointRhs +
        (config_.rhs.viscous.enabled ? kFlopsPerPointViscous : 0.0);
    reg.add_flops(rg.rhs, pts * rhs_flops);
    reg.add_bytes(rg.rhs, pts * kBytesPerPointRhs);

    // Implicit factored sweeps. A direction is cyclic when its min face
    // wraps (periodic BCs set both faces together).
    const BoundarySet& bcs = grid_.bcs(z);
    const bool per_j = bcs[Face::kJMin] == BcType::kPeriodic;
    const bool per_k = bcs[Face::kKMin] == BcType::kPeriodic;
    const bool per_l = bcs[Face::kLMin] == BcType::kPeriodic;

    engine_->sweep(zone, 0, dt_, config_.kappa_i, rhs, rg.sweep_j, per_j);
    reg.add_flops(rg.sweep_j, pts * kFlopsPerPointSweep);
    reg.add_bytes(rg.sweep_j, pts * kBytesPerPointSweep);

    engine_->sweep(zone, 1, dt_, config_.kappa_i, rhs, rg.sweep_k, per_k);
    reg.add_flops(rg.sweep_k, pts * kFlopsPerPointSweep);
    reg.add_bytes(rg.sweep_k, pts * kBytesPerPointSweep);

    engine_->sweep(zone, 2, dt_, config_.kappa_i, rhs, rg.sweep_l, per_l);
    reg.add_flops(rg.sweep_l, pts * kFlopsPerPointSweep);
    reg.add_bytes(rg.sweep_l, pts * kBytesPerPointSweep);

    // Update Q += dQ, one task per L plane.
    const int ng = Zone::kGhost;
    llp::ForOptions uopts;
    uopts.region = rg.update;
    llp::parallel_for(
        0, zone.lmax(),
        [&](std::int64_t l) {
          for (int k = 0; k < zone.kmax(); ++k) {
            for (int j = 0; j < zone.jmax(); ++j) {
              double* qp = zone.q_point(j, k, static_cast<int>(l));
              for (int n = 0; n < kNumVars; ++n) {
                qp[n] += rhs(n, j + ng, k + ng, static_cast<int>(l) + ng);
              }
            }
          }
        },
        uopts);
    reg.add_flops(rg.update, pts * kFlopsPerPointUpdate);
    reg.add_bytes(rg.update, pts * kBytesPerPointUpdate);
  }

  // RMS of R = (rhs / dt) over all interior values.
  residual_ = std::sqrt(sumsq / (static_cast<double>(total_points) * kNumVars)) /
              dt_;
  ++steps_;

  // CFL ramping toward deep steady-state convergence: grow while the
  // residual falls, back off to the starting CFL when it rises.
  if (config_.cfl_growth > 1.0) {
    if (prev_residual_ >= 0.0 && residual_ < prev_residual_) {
      cfl_ = std::min(config_.cfl_max, cfl_ * config_.cfl_growth);
    } else if (prev_residual_ >= 0.0 && residual_ > prev_residual_) {
      cfl_ = config_.cfl;
    }
    dt_ = cfl_ * grid_.spacing() / (config_.freestream.mach + 1.0);
  }
  prev_residual_ = residual_;
}

double Solver::run(int steps) {
  LLP_REQUIRE(steps >= 1, "steps must be >= 1");
  for (int i = 0; i < steps; ++i) step();
  return residual_;
}

double Solver::flops_per_step() const {
  double pts = 0.0;
  for (int z = 0; z < grid_.num_zones(); ++z) {
    pts += static_cast<double>(grid_.zone(z).interior_points());
  }
  const double viscous =
      config_.rhs.viscous.enabled ? kFlopsPerPointViscous : 0.0;
  return pts * (kFlopsPerPointRhs + viscous + 3.0 * kFlopsPerPointSweep +
                kFlopsPerPointUpdate);
}

double Solver::bytes_per_step() const {
  double pts = 0.0;
  for (int z = 0; z < grid_.num_zones(); ++z) {
    pts += static_cast<double>(grid_.zone(z).interior_points());
  }
  return pts * (kBytesPerPointRhs + 3.0 * kBytesPerPointSweep +
                kBytesPerPointUpdate);
}

}  // namespace f3d
