#include "f3d/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "core/access_span.hpp"
#include "core/runtime.hpp"
#include "f3d/engine.hpp"
#include "f3d/io.hpp"
#include "f3d/signatures.hpp"
#include "f3d/validation.hpp"
#include "obs/obs.hpp"
#include "tune/tuner.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace f3d {

namespace {
// Analytic per-point traffic estimates (bytes/step) for the NUMA check.
// The pencil organization re-reads Q once per kernel and writes dQ once;
// scratch stays in cache. These are deliberately coarse — the paper's
// comparison only needs the order of magnitude (68 MB/s vs 135+ MB/s).
constexpr double kBytesPerPointRhs = 3.0 * kNumVars * 8.0;
constexpr double kBytesPerPointSweep = 2.0 * kNumVars * 8.0;
constexpr double kBytesPerPointUpdate = 2.0 * kNumVars * 8.0;
constexpr double kFlopsPerPointUpdate = 1.0 * kNumVars;
}  // namespace

Solver::Solver(MultiZoneGrid& grid, SolverConfig config)
    : Solver(grid, std::move(config), llp::Runtime::current()) {}

Solver::Solver(MultiZoneGrid& grid, SolverConfig config, llp::Runtime& rt)
    : grid_(grid), config_(std::move(config)), rt_(&rt) {
  // Install the process-global autotuner when LLP_TUNE=1 (no-op otherwise)
  // so every auto-marked loop below self-optimizes over the run, and the
  // tracer when LLP_TRACE=file.json — both ride the same observer seam.
  llp::tune::init_from_env();
  llp::obs::init_from_env();
  // Typed rejection of fuzzer-shaped configs: a NaN CFL satisfies no
  // ordering comparison, so plain > / >= checks would wave it through and
  // every dt downstream would be NaN.
  if (!std::isfinite(config_.cfl) || config_.cfl <= 0.0) {
    throw llp::ValidationError("cfl must be finite and positive");
  }
  if (!std::isfinite(config_.kappa_i) || config_.kappa_i < 0.0) {
    throw llp::ValidationError("kappa_i must be finite and nonnegative");
  }
  if (!std::isfinite(config_.cfl_growth) || config_.cfl_growth < 1.0) {
    throw llp::ValidationError("cfl_growth must be finite and >= 1");
  }
  if (!std::isfinite(config_.cfl_max) || config_.cfl_max < config_.cfl) {
    throw llp::ValidationError(
        "cfl_max must be finite and >= the starting cfl");
  }
  if (!std::isfinite(config_.freestream.mach) ||
      config_.freestream.mach <= 0.0) {
    throw llp::ValidationError("free-stream Mach must be finite and positive");
  }
  // The 4th-difference dissipation stencil reaches two cells each way; a
  // zone thinner than 2*kGhost in any direction would fold the stencil
  // back through its own ghost layers.
  for (int z = 0; z < grid_.num_zones(); ++z) {
    const Zone& zn = grid_.zone(z);
    if (zn.jmax() < kMinZoneDim || zn.kmax() < kMinZoneDim ||
        zn.lmax() < kMinZoneDim) {
      throw llp::ValidationError(llp::strfmt(
          "zone %d dims %dx%dx%d below the stencil minimum of %d per axis",
          z, zn.jmax(), zn.kmax(), zn.lmax(), kMinZoneDim));
    }
  }
  cfl_ = config_.cfl;
  dt_ = cfl_ * grid_.spacing() / (config_.freestream.mach + 1.0);

  engine_ = make_engine(config_.engine);

  rhs_.reserve(static_cast<std::size_t>(grid_.num_zones()));
  for (int z = 0; z < grid_.num_zones(); ++z) {
    const Zone& zn = grid_.zone(z);
    rhs_.emplace_back(kNumVars, zn.jmax() + 2 * Zone::kGhost,
                      zn.kmax() + 2 * Zone::kGhost,
                      zn.lmax() + 2 * Zone::kGhost);
  }
  define_regions();
}

void Solver::define_regions() {
  auto& reg = rt_->regions();
  const auto kind = engine_info(config_.engine).parallel_outer
                        ? llp::RegionKind::kParallelLoop
                        : llp::RegionKind::kSerial;
  const std::string pre =
      config_.region_prefix.empty() ? "" : config_.region_prefix + ".";
  regions_.clear();
  for (int z = 0; z < grid_.num_zones(); ++z) {
    const std::string base = pre + "z" + std::to_string(z) + ".";
    ZoneRegions r;
    r.rhs = reg.define(base + "rhs", kind);
    r.sweep_j = reg.define(base + "sweep_j", kind);
    r.sweep_k = reg.define(base + "sweep_k", kind);
    r.sweep_l = reg.define(base + "sweep_l", kind);
    r.update = reg.define(base + "update", kind);
    regions_.push_back(r);
  }
  bc_region_ = reg.define(pre + "bc", llp::RegionKind::kSerial);
  exchange_region_ = reg.define(pre + "exchange", llp::RegionKind::kSerial);
  // Declare every hot region's affine access signature to the static
  // dependence analyzer, derived from this grid's real plane strides. The
  // tuner and engine selector prune illegal configs from these verdicts,
  // and the dynamic checker cross-validates them on every analyzed run.
  declare_region_signatures(grid_, config_, /*overwrite=*/true);
}

namespace {
// Step-scoped event pair for the trace timeline. The end fires on every
// exit with ok=0 when the step threw (an injected lane fault), so the
// exported timeline stays balanced across recoveries.
struct StepTraceScope {
  llp::Runtime* rt;
  std::int64_t step;
  bool ok = false;
  StepTraceScope(llp::Runtime& runtime, std::int64_t attempt)
      : rt(&runtime), step(attempt) {
    rt->emit(llp::Event{
        .t_ns = 0, .region = llp::kNoRegion, .a = step, .b = 0,
        .kind = llp::EventKind::kStepBegin, .pad = 0, .lane = -1, .tid = -1});
  }
  ~StepTraceScope() {
    rt->emit(llp::Event{
        .t_ns = 0, .region = llp::kNoRegion, .a = step, .b = ok ? 1 : 0,
        .kind = llp::EventKind::kStepEnd, .pad = 0, .lane = -1, .tid = -1});
  }
};
}  // namespace

void Solver::step() {
  // Bind this solver's runtime for the whole step: every parallel loop,
  // every emit reached from kernel code (fault hooks, engine timers), and
  // the region shorthands below all resolve to rt_, not the process
  // default — two solvers on different runtimes never share state.
  llp::RuntimeScope rt_scope(*rt_);
  auto& reg = rt_->regions();
  StepTraceScope step_trace(*rt_, steps_ + 1);

  // Boundary conditions and zonal exchange: cheap, deliberately serial
  // (Table 2: a face offers ~1/LMAX of the interior's work per sync).
  // Their work is mostly copies; attribute a small equivalent-FLOP cost so
  // the scaling model carries an honest (tiny) Amdahl tail.
  {
    const auto t0 = std::chrono::steady_clock::now();
    double face_points = 0.0;
    for (int z = 0; z < grid_.num_zones(); ++z) {
      const Zone& zn = grid_.zone(z);
      apply_boundary_conditions(grid_.zone(z), grid_.bcs(z),
                                config_.freestream);
      face_points += 2.0 * (static_cast<double>(zn.jmax()) * zn.kmax() +
                            static_cast<double>(zn.jmax()) * zn.lmax() +
                            static_cast<double>(zn.kmax()) * zn.lmax());
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reg.record(bc_region_, 0, dt.count());
    reg.add_flops(bc_region_, face_points * Zone::kGhost * 2.0);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    grid_.exchange();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    reg.record(exchange_region_, 0, dt.count());
    double iface_points = 0.0;
    for (int z = 0; z + 1 < grid_.num_zones(); ++z) {
      const Zone& zn = grid_.zone(z);
      iface_points += static_cast<double>(zn.kmax()) * zn.lmax();
    }
    reg.add_flops(exchange_region_, iface_points * Zone::kGhost * 2.0);
  }

  double sumsq = 0.0;
  std::size_t total_points = 0;

  for (int z = 0; z < grid_.num_zones(); ++z) {
    Zone& zone = grid_.zone(z);
    llp::Array4D<double>& rhs = rhs_[static_cast<std::size_t>(z)];
    const ZoneRegions& rg = regions_[static_cast<std::size_t>(z)];
    const double pts = static_cast<double>(zone.interior_points());
    total_points += zone.interior_points();

    // Right-hand side, one task per L plane, with the residual reduced
    // across lanes. Auto mode: tuned schedule/threads when LLP_TUNE=1.
    sumsq += llp::parallel_reduce<double>(
        0, zone.lmax(), 0.0, [](double a, double b) { return a + b; },
        [&](std::int64_t l, double& acc, const llp::LaneContext& ctx) {
          // Access logging in element coordinates: a fixed-L slab of the
          // (n,j,k,l) layout is contiguous, so the stencil's l±kGhost read
          // and the plane-l write are exact intervals. One log call per
          // plane; free (a null check) when no analyzer is recording.
          if (ctx.access_hook() != nullptr) {
            const auto& qs = zone.storage();
            const int lg = static_cast<int>(l);  // ghost slab of plane l-ng
            llp::AccessSpan<const double> q_log(
                qs.data(), static_cast<std::int64_t>(qs.size()), ctx,
                "zone.q");
            q_log.read_block(
                static_cast<std::int64_t>(qs.index(0, 0, 0, lg)),
                static_cast<std::int64_t>(
                    qs.index(0, 0, 0, lg + 2 * Zone::kGhost + 1)));
            llp::AccessSpan<double> rhs_log(
                rhs.data(), static_cast<std::int64_t>(rhs.size()), ctx,
                "rhs");
            rhs_log.write_block(
                static_cast<std::int64_t>(
                    rhs.index(0, 0, 0, lg + Zone::kGhost)),
                static_cast<std::int64_t>(
                    rhs.index(0, 0, 0, lg + Zone::kGhost + 1)));
          }
          compute_rhs_plane(zone, static_cast<int>(l), dt_, config_.rhs, rhs);
          acc += rhs_plane_sumsq(zone, static_cast<int>(l), rhs);
        },
        llp::ForOptions::auto_tuned(rg.rhs));
    const double rhs_flops =
        kFlopsPerPointRhs +
        (config_.rhs.viscous.enabled ? kFlopsPerPointViscous : 0.0);
    reg.add_flops(rg.rhs, pts * rhs_flops);
    reg.add_bytes(rg.rhs, pts * kBytesPerPointRhs);

    // Implicit factored sweeps. A direction is cyclic when its min face
    // wraps (periodic BCs set both faces together).
    const BoundarySet& bcs = grid_.bcs(z);
    const bool per_j = bcs[Face::kJMin] == BcType::kPeriodic;
    const bool per_k = bcs[Face::kKMin] == BcType::kPeriodic;
    const bool per_l = bcs[Face::kLMin] == BcType::kPeriodic;

    engine_->sweep(zone, 0, dt_, config_.kappa_i, rhs, rg.sweep_j, per_j);
    reg.add_flops(rg.sweep_j, pts * kFlopsPerPointSweep);
    reg.add_bytes(rg.sweep_j, pts * kBytesPerPointSweep);

    engine_->sweep(zone, 1, dt_, config_.kappa_i, rhs, rg.sweep_k, per_k);
    reg.add_flops(rg.sweep_k, pts * kFlopsPerPointSweep);
    reg.add_bytes(rg.sweep_k, pts * kBytesPerPointSweep);

    engine_->sweep(zone, 2, dt_, config_.kappa_i, rhs, rg.sweep_l, per_l);
    reg.add_flops(rg.sweep_l, pts * kFlopsPerPointSweep);
    reg.add_bytes(rg.sweep_l, pts * kBytesPerPointSweep);

    // Update Q += dQ, one task per L plane.
    const int ng = Zone::kGhost;
    llp::parallel_for(
        0, zone.lmax(),
        [&](std::int64_t l, const llp::LaneContext& ctx) {
          // Element-coordinate logging, as in the rhs loop above: this
          // lane reads rhs plane l and read-modify-writes q plane l.
          if (ctx.access_hook() != nullptr) {
            auto& qs = zone.storage();
            const int lg = static_cast<int>(l) + ng;
            llp::AccessSpan<double> q_log(
                qs.data(), static_cast<std::int64_t>(qs.size()), ctx,
                "zone.q");
            q_log.write_block(
                static_cast<std::int64_t>(qs.index(0, 0, 0, lg)),
                static_cast<std::int64_t>(qs.index(0, 0, 0, lg + 1)));
            llp::AccessSpan<const double> rhs_log(
                rhs.data(), static_cast<std::int64_t>(rhs.size()), ctx,
                "rhs");
            rhs_log.read_block(
                static_cast<std::int64_t>(rhs.index(0, 0, 0, lg)),
                static_cast<std::int64_t>(rhs.index(0, 0, 0, lg + 1)));
          }
          for (int k = 0; k < zone.kmax(); ++k) {
            for (int j = 0; j < zone.jmax(); ++j) {
              double* qp = zone.q_point(j, k, static_cast<int>(l));
              for (int n = 0; n < kNumVars; ++n) {
                qp[n] += rhs(n, j + ng, k + ng, static_cast<int>(l) + ng);
              }
            }
          }
        },
        llp::ForOptions::in_region(rg.update));
    reg.add_flops(rg.update, pts * kFlopsPerPointUpdate);
    reg.add_bytes(rg.update, pts * kBytesPerPointUpdate);
  }

  // RMS of R = (rhs / dt) over all interior values.
  residual_ = std::sqrt(sumsq / (static_cast<double>(total_points) * kNumVars)) /
              dt_;
  ++steps_;

  // CFL ramping toward deep steady-state convergence: grow while the
  // residual falls, back off to the starting CFL when it rises.
  if (config_.cfl_growth > 1.0) {
    if (prev_residual_ >= 0.0 && residual_ < prev_residual_) {
      cfl_ = std::min(config_.cfl_max, cfl_ * config_.cfl_growth);
    } else if (prev_residual_ >= 0.0 && residual_ > prev_residual_) {
      cfl_ = config_.cfl;
    }
    dt_ = cfl_ * grid_.spacing() / (config_.freestream.mach + 1.0);
  }
  prev_residual_ = residual_;
  step_trace.ok = true;
}

double Solver::run(int steps) {
  LLP_REQUIRE(steps >= 1, "steps must be >= 1");
  for (int i = 0; i < steps; ++i) step();
  return residual_;
}

void Solver::restore(const SolverState& state) {
  LLP_REQUIRE(state.steps >= 0, "restored step index must be >= 0");
  LLP_REQUIRE(std::isfinite(state.cfl) && state.cfl > 0.0,
              "restored cfl must be finite and positive");
  LLP_REQUIRE(std::isfinite(state.residual),
              "restored residual must be finite");
  steps_ = state.steps;
  cfl_ = state.cfl;
  residual_ = state.residual;
  prev_residual_ = state.prev_residual;
  dt_ = cfl_ * grid_.spacing() / (config_.freestream.mach + 1.0);
}

std::string RunReport::summary() const {
  std::string s = llp::strfmt(
      "steps=%d recoveries=%d checkpoints=%d residual=%.6e", steps_completed,
      recoveries, checkpoints, final_residual);
  if (durable_checkpoints > 0 || ckpt_write_failures > 0) {
    s += llp::strfmt(" durable=%d", durable_checkpoints);
  }
  if (ckpt_write_failures > 0) {
    s += llp::strfmt(" ckpt-write-failures=%d (%s)", ckpt_write_failures,
                     ckpt_failure_reason.c_str());
  }
  if (engine_fallback) s += " engine=vector-fallback";
  if (failed) s += " FAILED: " + failure_reason;
  return s;
}

RunReport Solver::run_protected(int steps, RunHistory* history) {
  LLP_REQUIRE(steps >= 1, "steps must be >= 1");
  // Bound for the whole run, not just inside step(): the checkpoint hook
  // runs between steps and emits durability events via Runtime::current().
  llp::RuntimeScope rt_scope(*rt_);
  const RecoveryConfig& rc = config_.recovery;
  RunReport report;

  // In-memory checkpoint: the interior solution (the same bytes a file
  // checkpoint would hold — ghost cells are rebuilt by the next step's BC
  // and exchange) plus the scalar time-stepping state.
  struct Checkpoint {
    std::string solution;
    double cfl = 0.0;
    double residual = 0.0;
    double prev_residual = -1.0;
    int steps = 0;
    std::size_t history_steps = 0;
  } ckpt;

  auto healthy_now = [&] {
    return std::isfinite(residual_) && all_finite(grid_);
  };
  auto take_checkpoint = [&] {
    std::ostringstream out(std::ios::binary);
    write_solution(out, grid_);
    ckpt.solution = out.str();
    ckpt.cfl = cfl_;
    ckpt.residual = residual_;
    ckpt.prev_residual = prev_residual_;
    ckpt.steps = steps_;
    ckpt.history_steps = history ? history->steps() : 0;
    ++report.checkpoints;
  };
  auto rollback = [&] {
    std::istringstream in(ckpt.solution, std::ios::binary);
    read_solution(in, grid_);
    // Back the CFL off from the checkpoint value once per recovery so a
    // dt-sensitive fault (AF blow-up at an aggressive CFL) clears on
    // replay; a later healthy checkpoint restores normal ramping.
    cfl_ = std::max(1e-6, ckpt.cfl * std::pow(rc.cfl_backoff,
                                              static_cast<double>(
                                                  report.recoveries)));
    dt_ = cfl_ * grid_.spacing() / (config_.freestream.mach + 1.0);
    residual_ = ckpt.residual;
    prev_residual_ = ckpt.prev_residual;
    steps_ = ckpt.steps;
    if (history) history->truncate(ckpt.history_steps);
    // Any durable snapshot taken after the rollback point is off the
    // standing timeline now; the hook must drop it rather than seal it
    // against the replayed (CFL-backed-off) trajectory.
    if (ckpt_hook_ != nullptr) ckpt_hook_->on_rollback(ckpt.steps);
    rt_->emit(llp::Event{
        .t_ns = 0, .region = llp::kNoRegion,
        .a = static_cast<std::int64_t>(ckpt.steps),
        .b = static_cast<std::int64_t>(report.recoveries),
        .kind = llp::EventKind::kRollback, .pad = 0, .lane = -1, .tid = -1});
  };

  // Persistent-fault tracking for the engine fallback: LaneErrors carry
  // the region that produced them, so repeated faults from one region are
  // recognizable even across rollbacks.
  llp::RegionId last_fault_region = llp::kNoRegion;
  int same_region_faults = 0;
  auto note_fault = [&](llp::RegionId region) {
    same_region_faults =
        (region != llp::kNoRegion && region == last_fault_region)
            ? same_region_faults + 1
            : 1;
    last_fault_region = region;
    if (!report.engine_fallback && rc.persistent_fault_limit > 0 &&
        region != llp::kNoRegion &&
        same_region_faults >= rc.persistent_fault_limit) {
      // The region keeps faulting under the configured engine: degrade to
      // the registry's fallback (serial plane-buffer) and keep going.
      const EngineKind fb = engine_fallback_for(engine_->kind());
      if (fb != engine_->kind()) {
        engine_ = make_engine(fb);
        report.engine_fallback = true;
      }
    }
  };

  take_checkpoint();  // step-0 baseline: a first-step fault is recoverable
  const int target = steps_ + steps;
  while (steps_ < target) {
    bool healthy = true;
    std::string why;
    llp::RegionId fault_region = llp::kNoRegion;
    // The step this iteration attempts. A thrown fault leaves steps_
    // unincremented while the health check sees it incremented; recording
    // the attempt keeps recovery_steps meaning "the step that faulted"
    // on both detection paths (and in both NDEBUG and assert builds,
    // where a NaN may trip an in-step LLP_ASSERT instead of surviving to
    // the post-step check).
    const int attempt = steps_ + 1;
    try {
      step();
      const bool due = rc.health_check_every <= 0 ||
                       (steps_ - ckpt.steps) % rc.health_check_every == 0 ||
                       steps_ == target;
      if (due && !healthy_now()) {
        healthy = false;
        why = llp::strfmt("health check failed at step %d: non-finite %s",
                          steps_,
                          std::isfinite(residual_) ? "solution value"
                                                   : "residual");
      }
    } catch (const llp::LaneError& e) {
      healthy = false;
      why = e.what();
      fault_region = e.region();
    } catch (const std::exception& e) {
      healthy = false;
      why = e.what();
    }

    if (healthy) {
      if (history) history->record(residual_, checksum(grid_));
      if (rc.checkpoint_every > 0 &&
          steps_ - ckpt.steps >= rc.checkpoint_every && steps_ < target &&
          healthy_now()) {
        take_checkpoint();
      }
      // Durable checkpoints ride the same healthy-step boundary. A failed
      // write is a diagnostic, not a solver fault: the run continues on the
      // previous intact generation. A CrashError propagates — a simulated
      // process death must not be absorbed by the recovery loop.
      if (ckpt_hook_ != nullptr && healthy_now()) {
        try {
          if (ckpt_hook_->on_healthy_step(grid_, state())) {
            ++report.durable_checkpoints;
          }
        } catch (const llp::IoError& e) {
          ++report.ckpt_write_failures;
          report.ckpt_failure_reason = e.what();
        }
      }
      continue;
    }

    if (report.recoveries >= rc.max_recoveries) {
      report.failed = true;
      report.failure_reason = why;
      rollback();  // leave the solver on its last healthy state
      break;
    }
    ++report.recoveries;
    report.recovery_steps.push_back(attempt);
    if (fault_region != llp::kNoRegion) {
      rt_->regions().record_recovery(fault_region);
    }
    note_fault(fault_region);
    rollback();
  }

  if (ckpt_hook_ != nullptr) {
    try {
      if (ckpt_hook_->flush(grid_, state())) ++report.durable_checkpoints;
    } catch (const llp::IoError& e) {
      ++report.ckpt_write_failures;
      report.ckpt_failure_reason = e.what();
    }
  }

  report.steps_completed = steps_;
  report.final_residual = residual_;
  return report;
}

double Solver::flops_per_step() const {
  double pts = 0.0;
  for (int z = 0; z < grid_.num_zones(); ++z) {
    pts += static_cast<double>(grid_.zone(z).interior_points());
  }
  const double viscous =
      config_.rhs.viscous.enabled ? kFlopsPerPointViscous : 0.0;
  return pts * (kFlopsPerPointRhs + viscous + 3.0 * kFlopsPerPointSweep +
                kFlopsPerPointUpdate);
}

double Solver::bytes_per_step() const {
  double pts = 0.0;
  for (int z = 0; z < grid_.num_zones(); ++z) {
    pts += static_cast<double>(grid_.zone(z).interior_points());
  }
  return pts * (kBytesPerPointRhs + 3.0 * kBytesPerPointSweep +
                kBytesPerPointUpdate);
}

}  // namespace f3d
