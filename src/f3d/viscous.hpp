// Thin-layer viscous terms (the "NS" in F3D's zonal Navier-Stokes).
//
// The thin-layer approximation keeps viscous derivatives only in the
// wall-normal direction — K here, matching the solver's slip/no-slip wall
// on the KMin face. With constant dynamic viscosity mu (laminar flow,
// nondimensionalized so mu/rho_inf/a_inf/L = 1/Re):
//
//   F_v = 1/Re * [ 0,
//                  mu u_y,
//                  (4/3) mu v_y,
//                  mu w_y,
//                  u mu u_y + (4/3) v mu v_y + w mu w_y
//                    + mu gamma/(Pr (gamma-1)) T_y ]
//
// evaluated at K faces with central differences and added to the RHS as
// (F_v[k+1/2] - F_v[k-1/2]) / dy. The terms are treated explicitly; the
// diffusion stability limit nu dt/dy^2 stays small for the Reynolds
// numbers and grids the tests and examples use.
#pragma once

#include "f3d/gas.hpp"

namespace f3d {

struct ViscousConfig {
  bool enabled = false;
  double reynolds = 10000.0;  ///< Re based on a_inf and unit length
  double prandtl = 0.72;
};

/// Viscous flux at the face between cells qk (index k) and qkp1 (k+1),
/// thin-layer in the K direction. dy is the K spacing; fv receives the
/// 5-component flux (already including the 1/Re factor).
void viscous_flux_k_face(const double qk[kNumVars],
                         const double qkp1[kNumVars], double dy,
                         const ViscousConfig& config, double fv[kNumVars]);

/// Analytic FLOPs per grid point of the thin-layer viscous update.
inline constexpr double kFlopsPerPointViscous = 60.0;

}  // namespace f3d
