#include "f3d/zone.hpp"

#include "util/error.hpp"

namespace f3d {

Zone::Zone(ZoneDims dims, double dx, double dy, double dz, double x0,
           double y0, double z0)
    : dims_(dims),
      dx_(dx),
      dy_(dy),
      dz_(dz),
      x0_(x0),
      y0_(y0),
      z0_(z0),
      storage_(kNumVars, dims.jmax + 2 * kGhost, dims.kmax + 2 * kGhost,
               dims.lmax + 2 * kGhost) {
  LLP_REQUIRE(dims.jmax >= 1 && dims.kmax >= 1 && dims.lmax >= 1,
              "zone dims must be >= 1");
  LLP_REQUIRE(dx > 0.0 && dy > 0.0 && dz > 0.0, "cell sizes must be positive");
}

void Zone::set_freestream(const FreeStream& fs) {
  double qinf[kNumVars];
  fs.conservative(qinf);
  for (int l = -kGhost; l < lmax() + kGhost; ++l) {
    for (int k = -kGhost; k < kmax() + kGhost; ++k) {
      for (int j = -kGhost; j < jmax() + kGhost; ++j) {
        double* qp = q_point(j, k, l);
        for (int n = 0; n < kNumVars; ++n) qp[n] = qinf[n];
      }
    }
  }
}

}  // namespace f3d
