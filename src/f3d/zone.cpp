#include "f3d/zone.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace f3d {

ZoneDims Zone::validated(ZoneDims dims) {
  const int d[3] = {dims.jmax, dims.kmax, dims.lmax};
  for (int axis = 0; axis < 3; ++axis) {
    if (d[axis] < 1 || d[axis] > kMaxDim) {
      throw llp::ValidationError(
          llp::strfmt("zone dims %dx%dx%d: extent %d outside [1, %d]",
                      dims.jmax, dims.kmax, dims.lmax, d[axis], kMaxDim));
    }
  }
  // Stepwise division proves the padded element count cannot wrap
  // std::size_t, independent of how kMaxDim relates to the word size.
  std::size_t total = static_cast<std::size_t>(kNumVars);
  constexpr std::size_t kLimit =
      static_cast<std::size_t>(1) << 58;  // bytes stay under 2^61
  for (int axis = 0; axis < 3; ++axis) {
    const std::size_t padded = static_cast<std::size_t>(d[axis]) + 2 * kGhost;
    if (total > kLimit / padded) {
      throw llp::ValidationError(
          llp::strfmt("zone dims %dx%dx%d: padded storage size overflows",
                      dims.jmax, dims.kmax, dims.lmax));
    }
    total *= padded;
  }
  return dims;
}

Zone::Zone(ZoneDims dims, double dx, double dy, double dz, double x0,
           double y0, double z0)
    : dims_(validated(dims)),
      dx_(dx),
      dy_(dy),
      dz_(dz),
      x0_(x0),
      y0_(y0),
      z0_(z0),
      storage_(kNumVars, dims.jmax + 2 * kGhost, dims.kmax + 2 * kGhost,
               dims.lmax + 2 * kGhost) {
  if (!(std::isfinite(dx) && std::isfinite(dy) && std::isfinite(dz)) ||
      dx <= 0.0 || dy <= 0.0 || dz <= 0.0) {
    throw llp::ValidationError("zone cell sizes must be finite and positive");
  }
  if (!(std::isfinite(x0) && std::isfinite(y0) && std::isfinite(z0))) {
    throw llp::ValidationError("zone origin must be finite");
  }
}

void Zone::set_freestream(const FreeStream& fs) {
  double qinf[kNumVars];
  fs.conservative(qinf);
  for (int l = -kGhost; l < lmax() + kGhost; ++l) {
    for (int k = -kGhost; k < kmax() + kGhost; ++k) {
      for (int j = -kGhost; j < jmax() + kGhost; ++j) {
        double* qp = q_point(j, k, l);
        for (int n = 0; n < kNumVars; ++n) qp[n] = qinf[n];
      }
    }
  }
}

}  // namespace f3d
