// Sweep engines: the two implementations the paper contrasts.
//
// VectorSweeps is the legacy organization: to vectorize around the Thomas
// recurrence, it batches a whole plane of lines and runs every stage across
// the plane with the transverse index innermost — requiring plane-sized
// scratch arrays (the original F3D's layout, §4 item 4).
//
// RiscSweeps is the tuned organization: one line (pencil) at a time with
// line-sized scratch that lives in cache, and the *outer* transverse loop
// handed to the doacross runtime (§4 items 1–4, Example 3).
//
// Both compute the same arithmetic; tests assert their results agree to
// roundoff, which is the paper's "no changes to the algorithm or the
// convergence properties" requirement.
#pragma once

#include <string_view>
#include <vector>

#include "core/llp.hpp"
#include "f3d/sweep_common.hpp"
#include "f3d/zone.hpp"

namespace f3d {

class SweepEngine {
public:
  virtual ~SweepEngine() = default;
  virtual std::string_view name() const = 0;

  /// Apply the implicit sweep in direction dir (0=J,1=K,2=L) to rhs in
  /// place. `region` receives the timing/trip record. `periodic` marks a
  /// direction whose two faces wrap onto each other (cyclic lines).
  virtual void sweep(const Zone& zone, int dir, double dt, double kappa_i,
                     llp::Array4D<double>& rhs, llp::RegionId region,
                     bool periodic = false) = 0;
};

/// Pencil-buffer engine, outer loop parallelized with doacross.
class RiscSweeps final : public SweepEngine {
public:
  std::string_view name() const override { return "risc"; }
  void sweep(const Zone& zone, int dir, double dt, double kappa_i,
             llp::Array4D<double>& rhs, llp::RegionId region,
             bool periodic = false) override;

private:
  std::vector<PencilWorkspace> workspaces_;  // one per lane
};

/// Plane-buffer engine, serial, vector-machine loop order.
class VectorSweeps final : public SweepEngine {
public:
  std::string_view name() const override { return "vector"; }
  void sweep(const Zone& zone, int dir, double dt, double kappa_i,
             llp::Array4D<double>& rhs, llp::RegionId region,
             bool periodic = false) override;

  /// Bytes of scratch currently held (plane-proportional; the reason the
  /// vector organization cannot stay in cache for production zone sizes).
  std::size_t scratch_bytes() const;

private:
  void ensure(int line_n, int inner_n);

  llp::AlignedVector<double> q_, r_, w_, lam_;   // 5 * line_n * inner_n each
  llp::AlignedVector<double> a_, b_, c_, d_;     // line_n * inner_n each
  int cap_line_ = 0, cap_inner_ = 0;
};

}  // namespace f3d
