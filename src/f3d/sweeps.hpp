// Sweep engines: the organizations the paper contrasts, plus the modern
// SIMD pencil variant that makes the contrast a live hardware question.
//
// VectorSweeps is the legacy organization: to vectorize around the Thomas
// recurrence, it batches a whole plane of lines and runs every stage across
// the plane with the transverse index innermost — requiring plane-sized
// scratch arrays (the original F3D's layout, §4 item 4).
//
// RiscSweeps is the tuned organization: one line (pencil) at a time with
// line-sized scratch that lives in cache, and the *outer* transverse loop
// handed to the doacross runtime (§4 items 1–4, Example 3).
//
// SimdSweeps is RiscSweeps with the plane-buffer insight re-applied at
// register width: kTridiagLaneWidth independent pencils are transposed
// into SoA lanes and their Thomas recurrences solved in lockstep through
// simd::pack — vectorizing *across* lines like the Cray did, but over a
// batch small enough to stay in cache like the pencil organization.
//
// All engines compute the same arithmetic (SimdSweeps up to fused-
// multiply-add rounding; see tridiag.hpp); tests assert their results
// agree to roundoff, which is the paper's "no changes to the algorithm or
// the convergence properties" requirement.
//
// Engine selection, names, and registration live in f3d/engine.hpp.
#pragma once

#include <string_view>
#include <vector>

#include "core/llp.hpp"
#include "f3d/sweep_common.hpp"
#include "f3d/zone.hpp"

namespace f3d {

/// The engine identities the registry in engine.hpp knows. Values are the
/// cluster wire encoding (protocol.hpp carries them as uint32) and must
/// stay stable: 0 and 1 predate the enum as SweepMode::kVector/kRisc.
enum class EngineKind : int {
  kPlaneVector = 0,   ///< plane buffers, serial (legacy organization)
  kPencilScalar = 1,  ///< pencil buffers, outer loops parallelized
  kPencilSimd = 2,    ///< pencil buffers + lane-batched SIMD recurrences
};

class SweepEngine {
public:
  virtual ~SweepEngine() = default;

  /// Which registered engine this is (capability flags, canonical name,
  /// and parse/print spellings hang off the registry entry — engine.hpp).
  virtual EngineKind kind() const = 0;
  virtual std::string_view name() const = 0;

  /// Apply the implicit sweep in direction dir (0=J,1=K,2=L) to rhs in
  /// place. `region` receives the timing/trip record. `periodic` marks a
  /// direction whose two faces wrap onto each other (cyclic lines).
  virtual void sweep(const Zone& zone, int dir, double dt, double kappa_i,
                     llp::Array4D<double>& rhs, llp::RegionId region,
                     bool periodic = false) = 0;
};

/// Pencil-buffer engine, outer loop parallelized with doacross.
class RiscSweeps final : public SweepEngine {
public:
  EngineKind kind() const override { return EngineKind::kPencilScalar; }
  std::string_view name() const override { return "risc"; }
  void sweep(const Zone& zone, int dir, double dt, double kappa_i,
             llp::Array4D<double>& rhs, llp::RegionId region,
             bool periodic = false) override;

private:
  std::vector<PencilWorkspace> workspaces_;  // one per lane
};

/// Pencil-buffer engine with interleaved-pencil SIMD batching: the same
/// doacross outer loop as RiscSweeps, but each task solves its pencils in
/// batches of kTridiagLaneWidth through the lane-batched Thomas kernel
/// (solve_pencil_batch). Periodic directions fall back to the per-line
/// cyclic solver — cyclic systems don't lane-batch, the same concession
/// VectorSweeps makes.
class SimdSweeps final : public SweepEngine {
public:
  EngineKind kind() const override { return EngineKind::kPencilSimd; }
  std::string_view name() const override { return "simd"; }
  void sweep(const Zone& zone, int dir, double dt, double kappa_i,
             llp::Array4D<double>& rhs, llp::RegionId region,
             bool periodic = false) override;

private:
  std::vector<SimdBatchWorkspace> workspaces_;   // one per lane
  std::vector<PencilWorkspace> cyclic_;          // periodic fallback, per lane
};

/// Plane-buffer engine, serial, vector-machine loop order.
class VectorSweeps final : public SweepEngine {
public:
  EngineKind kind() const override { return EngineKind::kPlaneVector; }
  std::string_view name() const override { return "vector"; }
  void sweep(const Zone& zone, int dir, double dt, double kappa_i,
             llp::Array4D<double>& rhs, llp::RegionId region,
             bool periodic = false) override;

  /// Bytes of scratch currently held (plane-proportional; the reason the
  /// vector organization cannot stay in cache for production zone sizes).
  std::size_t scratch_bytes() const;

private:
  void ensure(int line_n, int inner_n);

  llp::AlignedVector<double> q_, r_, w_, lam_;   // 5 * line_n * inner_n each
  llp::AlignedVector<double> a_, b_, c_, d_;     // line_n * inner_n each
  int cap_line_ = 0, cap_inner_ = 0;
};

}  // namespace f3d
