// Canonical flow cases: the paper's two zonal test cases (scalable), plus
// verification flows with known behaviour.
#pragma once

#include <memory>
#include <vector>

#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"

namespace f3d {

/// A case description: zone dimensions plus flow conditions.
struct CaseSpec {
  std::vector<ZoneDims> zones;
  FreeStream freestream;
  double spacing = 0.1;

  std::size_t total_points() const;
};

/// The paper's 1-million grid point case: three zones of
/// 15 x 75 x 70, 87 x 75 x 70, 89 x 75 x 70 (Table 4 note a), at `scale`
/// times each dimension (scale = 1 reproduces the full case; every dim is
/// clamped to >= 6 so tiny scales remain valid grids).
CaseSpec paper_1m_case(double scale = 1.0);

/// The paper's 59-million grid point case: 29/173/175 x 450 x 350
/// (Table 4 note b), scaled likewise.
CaseSpec paper_59m_case(double scale = 1.0);

/// Single-zone cube of n^3 cells, Mach-`mach` stream at 2 degrees angle of
/// attack with a slip wall at KMin — a projectile-like compression flow that
/// converges to steady state.
CaseSpec wall_compression_case(int n, double mach = 2.0);

/// Single-zone periodic cube seeded with an isentropic vortex convecting
/// with the stream; exact solution known for accuracy tests.
CaseSpec vortex_case(int n);

/// Build the grid for a case and set the free stream everywhere.
MultiZoneGrid build_grid(const CaseSpec& spec);

/// Make all six faces of every zone periodic (vortex/accuracy runs).
void make_periodic(MultiZoneGrid& grid);

/// Put a slip wall on KMin of every zone (wall_compression_case).
void add_kmin_wall(MultiZoneGrid& grid);

/// Isentropic vortex parameters (Shu's standard test, strength beta).
struct Vortex {
  double beta = 1.0;  ///< modest strength keeps the flow smooth
  double x0 = 0.0, y0 = 0.0;

  /// Exact primitive state at (x, y) relative to a free stream `fs`
  /// (the vortex is 2-D: no z dependence).
  Prim exact(const FreeStream& fs, double x, double y) const;
};

/// Overwrite the grid with the vortex field at t = 0 (ghosts included).
void initialize_vortex(MultiZoneGrid& grid, const FreeStream& fs,
                       const Vortex& vortex);

/// L2 error of the grid against the vortex translated to time t, with the
/// periodic box [0, extent) in x and y.
double vortex_l2_error(const MultiZoneGrid& grid, const FreeStream& fs,
                       const Vortex& vortex, double t, double extent);

/// Add a Gaussian pressure/density pulse of amplitude amp at the domain
/// center (radius expressed in cells).
void add_gaussian_pulse(MultiZoneGrid& grid, double amp, double radius_cells);

}  // namespace f3d
