#include "f3d/msg_driver.hpp"

#include <cmath>

#include "core/runtime.hpp"
#include "f3d/halo.hpp"
#include "f3d/validation.hpp"
#include "util/error.hpp"

namespace f3d {

std::uint64_t combined_checksum(const std::vector<std::uint64_t>& digests) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t d : digests) {
    for (int b = 0; b < 8; ++b) {
      h ^= (d >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::vector<std::uint64_t> per_zone_checksums(const MultiZoneGrid& grid) {
  std::vector<std::uint64_t> out;
  for (int z = 0; z < grid.num_zones(); ++z) {
    // Hash each zone through a single-zone view using the same digest as
    // f3d::checksum: rebuild via a one-zone grid copy.
    MultiZoneGrid view({grid.zone(z).dims()}, grid.spacing());
    Zone& dst = view.zone(0);
    for (int l = 0; l < dst.lmax(); ++l)
      for (int k = 0; k < dst.kmax(); ++k)
        for (int j = 0; j < dst.jmax(); ++j)
          for (int n = 0; n < kNumVars; ++n)
            dst.q(n, j, k, l) = grid.zone(z).q(n, j, k, l);
    out.push_back(checksum(view));
  }
  return out;
}

MsgRunResult run_message_passing_solver(const CaseSpec& spec, int steps,
                                        const SolverConfig& base_config,
                                        const ZoneInit& init) {
  LLP_REQUIRE(steps >= 1, "steps must be >= 1");
  const int ranks = static_cast<int>(spec.zones.size());
  LLP_REQUIRE(ranks >= 1, "case has no zones");

  // Rank-level parallelism replaces loop-level parallelism here: force the
  // loop runtime serial so concurrent ranks do not share the fork-join
  // pool (Behr's port had the same structure — parallelism across the
  // decomposition, vector/serial within).
  const int saved_threads = llp::num_threads();
  llp::set_num_threads(1);

  MsgRunResult result;
  result.residuals.assign(static_cast<std::size_t>(steps), 0.0);
  result.checksums.assign(static_cast<std::size_t>(ranks), 0);

  result.traffic = llp::msg::run(ranks, [&](llp::msg::Communicator& comm) {
    const int r = comm.rank();
    MultiZoneGrid grid({spec.zones[static_cast<std::size_t>(r)]},
                       spec.spacing);
    grid.set_freestream(spec.freestream);
    if (init) init(grid.zone(0), r);
    if (r > 0) grid.bcs(0)[Face::kJMin] = BcType::kInterface;
    if (r + 1 < ranks) grid.bcs(0)[Face::kJMax] = BcType::kInterface;

    SolverConfig cfg = base_config;
    cfg.freestream = spec.freestream;
    cfg.region_prefix = base_config.region_prefix + ".r" + std::to_string(r);
    Solver solver(grid, cfg);

    Zone& z = grid.zone(0);
    const double points5 =
        static_cast<double>(z.interior_points()) * kNumVars;
    std::vector<double> sendbuf, recvbuf(halo_doubles(z));

    for (int s = 0; s < steps; ++s) {
      // Interface exchange: what MultiZoneGrid::exchange() does in shared
      // memory, spelled out as messages (f3d/halo.hpp choreography).
      halo_exchange_step(comm, s, z, z, sendbuf, recvbuf);

      solver.step();

      // Global residual: recover each zone's sum of squares from the
      // solver's RMS definition (rms = sqrt(sumsq/(5N))/dt) and combine.
      const double rms = solver.residual();
      const double dt = solver.dt();
      const double sumsq = rms * rms * dt * dt * points5;
      const double total_sumsq = comm.allreduce_sum(sumsq);
      const double total_points5 = comm.allreduce_sum(points5);
      if (r == 0) {
        result.residuals[static_cast<std::size_t>(s)] =
            std::sqrt(total_sumsq / total_points5) / dt;
      }
    }
    result.checksums[static_cast<std::size_t>(r)] = checksum(grid);
  });

  llp::set_num_threads(saved_threads);
  return result;
}

}  // namespace f3d
