#include "f3d/multizone.hpp"

#include <cmath>

#include "util/error.hpp"

namespace f3d {

MultiZoneGrid::MultiZoneGrid(const std::vector<ZoneDims>& dims, double h)
    : h_(h) {
  if (dims.empty()) throw llp::ValidationError("need at least one zone");
  if (!std::isfinite(h) || h <= 0.0) {
    throw llp::ValidationError("spacing must be finite and positive");
  }
  for (std::size_t i = 1; i < dims.size(); ++i) {
    if (dims[i].kmax != dims[0].kmax || dims[i].lmax != dims[0].lmax) {
      throw llp::ValidationError("zones must share K/L dimensions");
    }
    if (dims[i].jmax < Zone::kGhost || dims[i - 1].jmax < Zone::kGhost) {
      throw llp::ValidationError(
          "zones must be at least kGhost cells deep for the exchange");
    }
  }
  zones_.reserve(dims.size());
  bcs_.resize(dims.size());
  double x0 = 0.0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    zones_.emplace_back(dims[i], h, h, h, x0);
    x0 += dims[i].jmax * h;
  }
  for (std::size_t i = 0; i < dims.size(); ++i) {
    BoundarySet& b = bcs_[i];
    b[Face::kJMin] = (i == 0) ? BcType::kFreeStream : BcType::kInterface;
    b[Face::kJMax] =
        (i + 1 == dims.size()) ? BcType::kExtrapolate : BcType::kInterface;
    b[Face::kKMin] = BcType::kFreeStream;
    b[Face::kKMax] = BcType::kFreeStream;
    b[Face::kLMin] = BcType::kFreeStream;
    b[Face::kLMax] = BcType::kFreeStream;
  }
}

std::size_t MultiZoneGrid::total_points() const {
  std::size_t n = 0;
  for (const auto& z : zones_) n += z.interior_points();
  return n;
}

std::vector<ZoneDims> MultiZoneGrid::zone_dims() const {
  std::vector<ZoneDims> out;
  out.reserve(zones_.size());
  for (const auto& z : zones_) out.push_back(z.dims());
  return out;
}

void MultiZoneGrid::set_freestream(const FreeStream& fs) {
  for (auto& z : zones_) z.set_freestream(fs);
}

void MultiZoneGrid::exchange() {
  for (std::size_t i = 0; i + 1 < zones_.size(); ++i) {
    Zone& left = zones_[i];
    Zone& right = zones_[i + 1];
    const int jl = left.jmax();
    const int km = left.kmax(), lm = left.lmax();
    const int ng = Zone::kGhost;
    for (int l = -ng; l < lm + ng; ++l) {
      for (int k = -ng; k < km + ng; ++k) {
        for (int d = 1; d <= ng; ++d) {
          // Left zone's JMax ghosts read the right zone's first cells.
          double* lg = left.q_point(jl + d - 1, k, l);
          const double* rs = right.q_point(d - 1, k, l);
          // Right zone's JMin ghosts read the left zone's last cells.
          double* rg = right.q_point(-d, k, l);
          const double* ls = left.q_point(jl - d, k, l);
          for (int n = 0; n < kNumVars; ++n) {
            lg[n] = rs[n];
            rg[n] = ls[n];
          }
        }
      }
    }
  }
}

}  // namespace f3d
