#include "f3d/viscous.hpp"

#include "util/error.hpp"

namespace f3d {

void viscous_flux_k_face(const double qk[kNumVars],
                         const double qkp1[kNumVars], double dy,
                         const ViscousConfig& config, double fv[kNumVars]) {
  LLP_ASSERT(dy > 0.0 && config.reynolds > 0.0 && config.prandtl > 0.0);
  const Prim a = to_prim(qk);
  const Prim b = to_prim(qkp1);
  const double inv_dy = 1.0 / dy;

  // Face-centered derivatives and velocities.
  const double uy = (b.u - a.u) * inv_dy;
  const double vy = (b.v - a.v) * inv_dy;
  const double wy = (b.w - a.w) * inv_dy;
  const double uf = 0.5 * (a.u + b.u);
  const double vf = 0.5 * (a.v + b.v);
  const double wf = 0.5 * (a.w + b.w);

  // Temperature in a_inf = 1 units: T = p / rho (so T_inf = 1/gamma).
  const double ta = a.p / a.rho;
  const double tb = b.p / b.rho;
  const double ty = (tb - ta) * inv_dy;

  const double mu_over_re = 1.0 / config.reynolds;  // constant viscosity
  const double tau_xy = mu_over_re * uy;
  const double tau_yy = mu_over_re * (4.0 / 3.0) * vy;
  const double tau_zy = mu_over_re * wy;
  const double heat =
      mu_over_re * kGamma / (config.prandtl * (kGamma - 1.0)) * ty;

  fv[0] = 0.0;
  fv[1] = tau_xy;
  fv[2] = tau_yy;
  fv[3] = tau_zy;
  fv[4] = uf * tau_xy + vf * tau_yy + wf * tau_zy + heat;
}

}  // namespace f3d
