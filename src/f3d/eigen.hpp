// Eigensystem of the 3-D Euler flux Jacobian for the diagonalized
// approximate-factorization scheme (Pulliam–Chaussée diagonal ADI).
//
// For direction n in {x,y,z}, A_n = dF_n/dQ = R_n diag(lambda) L_n with
//   lambda = [u_n - c, u_n, u_n, u_n, u_n + c].
//
// The implicit sweeps project the right-hand side into characteristic
// variables with L, solve five scalar tridiagonal systems, and project back
// with R. Only axis directions are needed on a Cartesian grid; y and z reuse
// the x-direction matrices through a cyclic relabeling of the velocity
// components.
#pragma once

#include "f3d/gas.hpp"

namespace f3d {

/// Eigenvalues of A_dir at state q, in the fixed order
/// [un - c, un, un, un, un + c] matching apply_left/apply_right.
void eigenvalues(int dir, const double q[kNumVars], double lam[kNumVars]);

/// w = L_dir(q) * x: project x into characteristic variables.
void apply_left(int dir, const double q[kNumVars], const double x[kNumVars],
                double w[kNumVars]);

/// x = R_dir(q) * w: project characteristic variables back.
void apply_right(int dir, const double q[kNumVars], const double w[kNumVars],
                 double x[kNumVars]);

/// Analytic floating-point operation counts for the transforms (used by the
/// solver's FLOP accounting).
inline constexpr double kFlopsApplyLeft = 60.0;
inline constexpr double kFlopsApplyRight = 55.0;
inline constexpr double kFlopsEigenvalues = 15.0;

}  // namespace f3d
