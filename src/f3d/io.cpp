#include "f3d/io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <vector>

#include "util/error.hpp"
#include "util/format.hpp"

namespace f3d {

namespace {
constexpr const char* kMagic = "F3DQ1";

// How many zones a header may claim before we call it corrupt. The paper's
// grids are 3 zones; three orders of magnitude of headroom is plenty.
constexpr int kMaxZones = 4096;
}  // namespace

void pack_zone_interior(const Zone& z, std::vector<double>& out) {
  out.reserve(out.size() + z.interior_points() * kNumVars);
  for (int l = 0; l < z.lmax(); ++l) {
    for (int k = 0; k < z.kmax(); ++k) {
      for (int j = 0; j < z.jmax(); ++j) {
        const double* q = z.q_point(j, k, l);
        out.insert(out.end(), q, q + kNumVars);
      }
    }
  }
}

void unpack_zone_interior(const std::vector<double>& buf, Zone& z) {
  if (buf.size() != z.interior_points() * kNumVars) {
    throw llp::IoError(llp::strfmt(
        "zone payload holds %zu values, zone needs %zu", buf.size(),
        z.interior_points() * static_cast<std::size_t>(kNumVars)));
  }
  for (double v : buf) {
    if (!std::isfinite(v)) {
      throw llp::IoError("zone payload contains a non-finite value");
    }
  }
  std::size_t idx = 0;
  for (int l = 0; l < z.lmax(); ++l) {
    for (int k = 0; k < z.kmax(); ++k) {
      for (int j = 0; j < z.jmax(); ++j) {
        double* q = z.q_point(j, k, l);
        for (int n = 0; n < kNumVars; ++n) q[n] = buf[idx++];
      }
    }
  }
}

void write_solution(std::ostream& out, const MultiZoneGrid& grid) {
  out << kMagic << ' ' << grid.num_zones() << '\n';
  for (int z = 0; z < grid.num_zones(); ++z) {
    const Zone& zn = grid.zone(z);
    out << zn.jmax() << ' ' << zn.kmax() << ' ' << zn.lmax() << '\n';
  }
  for (int zi = 0; zi < grid.num_zones(); ++zi) {
    std::vector<double> buf;
    pack_zone_interior(grid.zone(zi), buf);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size() * sizeof(double)));
  }
  LLP_REQUIRE(out.good(), "write failed");
}

void read_solution(std::istream& in, MultiZoneGrid& grid) {
  std::string magic;
  int zones = 0;
  in >> magic >> zones;
  if (!in.good() || magic != kMagic) {
    throw llp::IoError("not an F3D solution stream");
  }
  if (zones <= 0 || zones > kMaxZones) {
    throw llp::IoError(llp::strfmt("implausible zone count %d", zones));
  }
  if (zones != grid.num_zones()) {
    throw llp::IoError(llp::strfmt("zone count mismatch: stream has %d, "
                                   "grid has %d",
                                   zones, grid.num_zones()));
  }
  for (int z = 0; z < zones; ++z) {
    int jm = 0, km = 0, lm = 0;
    in >> jm >> km >> lm;
    if (!in.good()) throw llp::IoError("truncated header");
    if (jm <= 0 || km <= 0 || lm <= 0 || jm > kMaxZoneDim ||
        km > kMaxZoneDim || lm > kMaxZoneDim) {
      throw llp::IoError(
          llp::strfmt("implausible zone %d dims %d x %d x %d", z, jm, km, lm));
    }
    if (jm != grid.zone(z).jmax() || km != grid.zone(z).kmax() ||
        lm != grid.zone(z).lmax()) {
      throw llp::IoError(llp::strfmt("zone %d dimension mismatch", z));
    }
  }
  in.ignore(1);  // the newline before the binary payload

  // Validate every zone's payload before touching the grid: a truncated or
  // poisoned stream must not leave a half-restored solution behind.
  std::vector<std::vector<double>> payload(static_cast<std::size_t>(zones));
  for (int zi = 0; zi < zones; ++zi) {
    const Zone& z = grid.zone(zi);
    auto& buf = payload[static_cast<std::size_t>(zi)];
    buf.resize(z.interior_points() * kNumVars);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(double)));
    if (!in.good()) {
      throw llp::IoError(llp::strfmt("truncated payload in zone %d", zi));
    }
    for (double v : buf) {
      if (!std::isfinite(v)) {
        throw llp::IoError(
            llp::strfmt("non-finite value in zone %d payload", zi));
      }
    }
  }
  for (int zi = 0; zi < zones; ++zi) {
    unpack_zone_interior(payload[static_cast<std::size_t>(zi)],
                         grid.zone(zi));
  }
}

void save_solution(const std::string& path, const MultiZoneGrid& grid) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    throw llp::IoError("cannot open " + path + " for writing");
  }
  write_solution(out, grid);
}

void load_solution(const std::string& path, MultiZoneGrid& grid) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw llp::IoError("cannot open " + path + " for reading");
  }
  read_solution(in, grid);
}

void write_plane_csv(std::ostream& out, const Zone& zone, int k) {
  LLP_REQUIRE(k >= 0 && k < zone.kmax(), "plane out of range");
  out << "x,z,rho,u,v,w,p\n";
  for (int l = 0; l < zone.lmax(); ++l) {
    for (int j = 0; j < zone.jmax(); ++j) {
      const Prim s = to_prim(zone.q_point(j, k, l));
      out << llp::strfmt("%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n", zone.x(j),
                         zone.z(l), s.rho, s.u, s.v, s.w, s.p);
    }
  }
}

}  // namespace f3d
