#include "f3d/io.hpp"

#include <fstream>
#include <ostream>
#include <vector>

#include "util/error.hpp"
#include "util/format.hpp"

namespace f3d {

namespace {
constexpr const char* kMagic = "F3DQ1";
}

void write_solution(std::ostream& out, const MultiZoneGrid& grid) {
  out << kMagic << ' ' << grid.num_zones() << '\n';
  for (int z = 0; z < grid.num_zones(); ++z) {
    const Zone& zn = grid.zone(z);
    out << zn.jmax() << ' ' << zn.kmax() << ' ' << zn.lmax() << '\n';
  }
  for (int zi = 0; zi < grid.num_zones(); ++zi) {
    const Zone& z = grid.zone(zi);
    std::vector<double> buf;
    buf.reserve(z.interior_points() * kNumVars);
    for (int l = 0; l < z.lmax(); ++l) {
      for (int k = 0; k < z.kmax(); ++k) {
        for (int j = 0; j < z.jmax(); ++j) {
          const double* q = z.q_point(j, k, l);
          buf.insert(buf.end(), q, q + kNumVars);
        }
      }
    }
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size() * sizeof(double)));
  }
  LLP_REQUIRE(out.good(), "write failed");
}

void read_solution(std::istream& in, MultiZoneGrid& grid) {
  std::string magic;
  int zones = 0;
  in >> magic >> zones;
  LLP_REQUIRE(in.good() && magic == kMagic, "not an F3D solution stream");
  LLP_REQUIRE(zones == grid.num_zones(), "zone count mismatch");
  for (int z = 0; z < zones; ++z) {
    int jm = 0, km = 0, lm = 0;
    in >> jm >> km >> lm;
    LLP_REQUIRE(in.good(), "truncated header");
    LLP_REQUIRE(jm == grid.zone(z).jmax() && km == grid.zone(z).kmax() &&
                    lm == grid.zone(z).lmax(),
                "zone dimension mismatch");
  }
  in.ignore(1);  // the newline before the binary payload
  for (int zi = 0; zi < zones; ++zi) {
    Zone& z = grid.zone(zi);
    std::vector<double> buf(z.interior_points() * kNumVars);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(double)));
    LLP_REQUIRE(in.good(), "truncated payload");
    std::size_t idx = 0;
    for (int l = 0; l < z.lmax(); ++l) {
      for (int k = 0; k < z.kmax(); ++k) {
        for (int j = 0; j < z.jmax(); ++j) {
          double* q = z.q_point(j, k, l);
          for (int n = 0; n < kNumVars; ++n) q[n] = buf[idx++];
        }
      }
    }
  }
}

void save_solution(const std::string& path, const MultiZoneGrid& grid) {
  std::ofstream out(path, std::ios::binary);
  LLP_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
  write_solution(out, grid);
}

void load_solution(const std::string& path, MultiZoneGrid& grid) {
  std::ifstream in(path, std::ios::binary);
  LLP_REQUIRE(in.is_open(), "cannot open " + path + " for reading");
  read_solution(in, grid);
}

void write_plane_csv(std::ostream& out, const Zone& zone, int k) {
  LLP_REQUIRE(k >= 0 && k < zone.kmax(), "plane out of range");
  out << "x,z,rho,u,v,w,p\n";
  for (int l = 0; l < zone.lmax(); ++l) {
    for (int j = 0; j < zone.jmax(); ++j) {
      const Prim s = to_prim(zone.q_point(j, k, l));
      out << llp::strfmt("%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n", zone.x(j),
                         zone.z(l), s.rho, s.u, s.v, s.w, s.p);
    }
  }
}

}  // namespace f3d
