// Tridiagonal line solvers for the implicit sweeps.
//
// The recurrence in the Thomas algorithm is what made these loops
// non-vectorizable along the sweep direction and hence what forced the
// original vector code to batch whole planes (vectorizing *across* lines).
// The RISC version solves one pencil at a time instead.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "core/access_span.hpp"

namespace f3d {

/// Solve a tridiagonal system in place with the Thomas algorithm:
///   a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1] = d[i],  i = 0..n-1
/// (a[0] and c[n-1] are ignored). On return d holds x; b and d are
/// overwritten. Requires diagonal dominance for stability (the implicit
/// operator guarantees it). All spans must have equal size >= 1.
void solve_tridiagonal(std::span<const double> a, std::span<double> b,
                       std::span<const double> c, std::span<double> d);

/// Batched Thomas across `m` independent systems of length n, stored
/// line-contiguously: coefficient arrays are n*m with system s at stride 1
/// and element i at stride m (i.e. "vector" layout — element i of every
/// system is contiguous). This is the plane-buffer organization the vector
/// code used: the inner loop runs across systems and vectorizes.
void solve_tridiagonal_batch_vector_layout(std::span<const double> a,
                                           std::span<double> b,
                                           std::span<const double> c,
                                           std::span<double> d, int n, int m);

/// Instrumented Thomas solve: identical to the span overload, but the
/// coefficient views are logged accessors, so a parallel loop that solves
/// lines through them hands the dependence checker the exact intervals
/// each lane touched (a[] and c[] read, b[] and d[] read and overwritten).
/// Zero-cost when no analyzer is recording.
void solve_tridiagonal(const llp::AccessSpan<const double>& a,
                       const llp::AccessSpan<double>& b,
                       const llp::AccessSpan<const double>& c,
                       const llp::AccessSpan<double>& d);

/// Solve a periodic tridiagonal system (x[-1] == x[n-1], x[n] == x[0]) via
/// the Sherman–Morrison correction. b and d are overwritten; on return d
/// holds x. Requires n >= 3.
void solve_periodic_tridiagonal(std::span<const double> a, std::span<double> b,
                                std::span<const double> c,
                                std::span<double> d);

/// Lane width of the interleaved-pencil SIMD Thomas kernel. Fixed at 4
/// (one AVX2 register of doubles) regardless of build flags, so the lane
/// layout — and therefore every caller's batching loop — is identical on
/// the scalar fallback and the vector path.
inline constexpr int kTridiagLaneWidth = 4;

/// Lane-batched Thomas across kTridiagLaneWidth interleaved independent
/// systems of length n: arrays are n*kTridiagLaneWidth with element i of
/// lane w at index i*kTridiagLaneWidth + w. Same in-place contract as
/// solve_tridiagonal (b and d overwritten, d returns x), applied to every
/// lane in lockstep — the carried dependence stays along i, the lanes are
/// independent, so each elimination step is one vector op.
///
/// Dispatches at runtime to the AVX2+FMA kernel when it was compiled in
/// and the host supports it; otherwise runs the scalar-pack reference.
/// The two differ only in fused-multiply-add rounding (the vector kernel
/// fuses, the reference rounds twice): O(eps) relative per element, NOT
/// bitwise — see the ULP policy note in simd/pack.hpp.
void solve_tridiagonal_lanes(const double* a, double* b, const double* c,
                             double* d, int n);

/// Which kernel solve_tridiagonal_lanes dispatches to on this host:
/// "avx2" or "generic". For logs, benches, and dispatch tests.
std::string_view tridiag_lanes_kernel();

/// Analytic FLOP count of one Thomas solve of length n.
inline constexpr double tridiag_flops(int n) { return 8.0 * n; }

}  // namespace f3d
