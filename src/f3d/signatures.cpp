#include "f3d/signatures.hpp"

#include "analyze/static/registry.hpp"
#include "f3d/gas.hpp"

namespace f3d {

namespace {

using llp::analyze::AffineAccess;
using llp::analyze::AffineSignature;

// Ghosted L-plane stride of a zone's (n,j,k,l) storage — identical for
// zone.q and its matching rhs array (same padded dims by construction).
std::int64_t plane_stride(const Zone& zone) {
  return static_cast<std::int64_t>(kNumVars) *
         (zone.jmax() + 2 * Zone::kGhost) * (zone.kmax() + 2 * Zone::kGhost);
}

std::string zone_base(const SolverConfig& config, int z) {
  const std::string pre =
      config.region_prefix.empty() ? "" : config.region_prefix + ".";
  return pre + "z" + std::to_string(z) + ".";
}

}  // namespace

AffineSignature rhs_region_signature(const Zone& zone) {
  const std::int64_t plane = plane_stride(zone);
  AffineSignature sig;
  sig.trips = zone.lmax();
  // Task l reads the stencil's ghost slab [l, l + 2*kGhost] of zone.q …
  sig.accesses.push_back(AffineAccess::read(
      "zone.q", plane, 0, (2 * Zone::kGhost + 1) * plane));
  // … and writes exactly its own interior rhs plane l + kGhost.
  sig.accesses.push_back(
      AffineAccess::write("rhs", plane, Zone::kGhost * plane, plane));
  return sig;
}

AffineSignature update_region_signature(const Zone& zone) {
  const std::int64_t plane = plane_stride(zone);
  AffineSignature sig;
  sig.trips = zone.lmax();
  sig.accesses.push_back(AffineAccess::write(
      "zone.q", plane, Zone::kGhost * plane, plane));
  sig.accesses.push_back(AffineAccess::read(
      "rhs", plane, Zone::kGhost * plane, plane));
  return sig;
}

AffineSignature sweep_region_signature() {
  AffineSignature sig;  // trips symbolic: batching is engine-dependent
  sig.accesses.push_back(AffineAccess::read("zone.q", 1));
  sig.accesses.push_back(AffineAccess::write("rhs", 1));
  return sig;
}

std::vector<std::string> sweep_region_names(const MultiZoneGrid& grid,
                                            const SolverConfig& config) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(grid.num_zones()) * 3);
  for (int z = 0; z < grid.num_zones(); ++z) {
    const std::string base = zone_base(config, z);
    names.push_back(base + "sweep_j");
    names.push_back(base + "sweep_k");
    names.push_back(base + "sweep_l");
  }
  return names;
}

void declare_region_signatures(const MultiZoneGrid& grid,
                               const SolverConfig& config, bool overwrite) {
  auto put = [overwrite](const std::string& region, AffineSignature sig) {
    if (overwrite) {
      llp::analyze::declare_access(region, std::move(sig));
    } else {
      llp::analyze::declare_access_if_absent(region, std::move(sig));
    }
  };
  for (int z = 0; z < grid.num_zones(); ++z) {
    const Zone& zone = grid.zone(z);
    const std::string base = zone_base(config, z);
    put(base + "rhs", rhs_region_signature(zone));
    put(base + "sweep_j", sweep_region_signature());
    put(base + "sweep_k", sweep_region_signature());
    put(base + "sweep_l", sweep_region_signature());
    put(base + "update", update_region_signature(zone));
  }
}

}  // namespace f3d
