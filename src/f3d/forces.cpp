#include "f3d/forces.hpp"

#include "util/error.hpp"

namespace f3d {

namespace {
double q_inf(const FreeStream& fs) {
  const Prim s = fs.prim();
  const double v2 = s.u * s.u + s.v * s.v + s.w * s.w;
  return 0.5 * s.rho * v2;
}
}  // namespace

double WallForce::cx(const FreeStream& fs) const {
  LLP_REQUIRE(area > 0.0, "no wall area integrated");
  return fx / (q_inf(fs) * area);
}
double WallForce::cy(const FreeStream& fs) const {
  LLP_REQUIRE(area > 0.0, "no wall area integrated");
  return fy / (q_inf(fs) * area);
}
double WallForce::cz(const FreeStream& fs) const {
  LLP_REQUIRE(area > 0.0, "no wall area integrated");
  return fz / (q_inf(fs) * area);
}

WallForce integrate_wall_force(const Zone& zone, Face face) {
  WallForce f;
  const int jm = zone.jmax(), km = zone.kmax(), lm = zone.lmax();

  // Outward-of-domain unit normal and per-cell face area.
  double nx = 0.0, ny = 0.0, nz = 0.0, cell_area = 0.0;
  switch (face) {
    case Face::kJMin: nx = -1.0; cell_area = zone.dy() * zone.dz(); break;
    case Face::kJMax: nx = 1.0; cell_area = zone.dy() * zone.dz(); break;
    case Face::kKMin: ny = -1.0; cell_area = zone.dx() * zone.dz(); break;
    case Face::kKMax: ny = 1.0; cell_area = zone.dx() * zone.dz(); break;
    case Face::kLMin: nz = -1.0; cell_area = zone.dx() * zone.dy(); break;
    case Face::kLMax: nz = 1.0; cell_area = zone.dx() * zone.dy(); break;
  }

  auto accumulate = [&](const double* q) {
    const double p = pressure(q);
    f.fx += p * cell_area * nx;
    f.fy += p * cell_area * ny;
    f.fz += p * cell_area * nz;
    f.area += cell_area;
  };

  switch (face) {
    case Face::kJMin:
      for (int l = 0; l < lm; ++l)
        for (int k = 0; k < km; ++k) accumulate(zone.q_point(0, k, l));
      break;
    case Face::kJMax:
      for (int l = 0; l < lm; ++l)
        for (int k = 0; k < km; ++k) accumulate(zone.q_point(jm - 1, k, l));
      break;
    case Face::kKMin:
      for (int l = 0; l < lm; ++l)
        for (int j = 0; j < jm; ++j) accumulate(zone.q_point(j, 0, l));
      break;
    case Face::kKMax:
      for (int l = 0; l < lm; ++l)
        for (int j = 0; j < jm; ++j) accumulate(zone.q_point(j, km - 1, l));
      break;
    case Face::kLMin:
      for (int k = 0; k < km; ++k)
        for (int j = 0; j < jm; ++j) accumulate(zone.q_point(j, k, 0));
      break;
    case Face::kLMax:
      for (int k = 0; k < km; ++k)
        for (int j = 0; j < jm; ++j) accumulate(zone.q_point(j, k, lm - 1));
      break;
  }
  return f;
}

WallForce total_wall_force(const MultiZoneGrid& grid) {
  WallForce total;
  for (int z = 0; z < grid.num_zones(); ++z) {
    for (int fi = 0; fi < kNumFaces; ++fi) {
      const BcType bc = grid.bcs(z).face[fi];
      if (bc == BcType::kSlipWall || bc == BcType::kNoSlipWall) {
        const WallForce f =
            integrate_wall_force(grid.zone(z), static_cast<Face>(fi));
        total.fx += f.fx;
        total.fy += f.fy;
        total.fz += f.fz;
        total.area += f.area;
      }
    }
  }
  return total;
}

}  // namespace f3d
