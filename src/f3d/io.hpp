// Solution I/O: a PLOT3D-flavored multi-zone solution file format.
//
// Text header (magic, zone count, dims per zone) followed by the raw
// binary Q data of every zone, interior cells only, in Fortran order with
// the variable index fastest — the layout the solver stores. Reading a
// solution back restores the interior bitwise; ghost cells are rebuilt by
// the next step's boundary conditions and exchange, so a checkpointed run
// continues exactly (test_io verifies run(10) == run(5)+save+load+run(5)).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "f3d/multizone.hpp"

namespace f3d {

/// Write the grid's interior solution to a stream (binary payload).
void write_solution(std::ostream& out, const MultiZoneGrid& grid);

/// Read a solution written by write_solution into `grid`, whose zone
/// dimensions must match exactly. Malformed input — wrong magic, absurd or
/// mismatched zone dimensions, a truncated header or payload, non-finite
/// values — throws llp::IoError instead of constructing garbage state; the
/// grid is only modified once the entire stream has validated.
void read_solution(std::istream& in, MultiZoneGrid& grid);

/// Largest zone dimension read_solution will believe; anything bigger is
/// treated as a corrupt header, not an allocation request.
inline constexpr int kMaxZoneDim = 1 << 16;

/// Append zone `z`'s interior Q values to `out` in the canonical order
/// (variable fastest, then J, K, L) — the per-zone payload layout shared by
/// the solution format and the checkpoint frames.
void pack_zone_interior(const Zone& z, std::vector<double>& out);

/// Scatter `buf` (interior_points() * kNumVars values, canonical order)
/// back into zone `z`'s interior. Throws llp::IoError on a size mismatch
/// or any non-finite value.
void unpack_zone_interior(const std::vector<double>& buf, Zone& z);

/// Convenience file wrappers.
void save_solution(const std::string& path, const MultiZoneGrid& grid);
void load_solution(const std::string& path, MultiZoneGrid& grid);

/// Write one K-plane of one zone as CSV (x, z, rho, u, v, w, p) — the
/// quick-look output the examples use.
void write_plane_csv(std::ostream& out, const Zone& zone, int k);

}  // namespace f3d
