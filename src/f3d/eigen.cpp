#include "f3d/eigen.hpp"

namespace f3d {

namespace {

// Cyclic relabeling so the x-direction formulas serve all three axes:
// for dir d, mom[0] is the conservative index of the normal momentum and
// mom[1], mom[2] the two tangential momenta (right-handed order).
struct Perm {
  int mom[3];
};

constexpr Perm kPerm[3] = {
    {{1, 2, 3}},  // x: normal u, tangents v, w
    {{2, 3, 1}},  // y: normal v, tangents w, u
    {{3, 1, 2}},  // z: normal w, tangents u, v
};

struct Local {
  double un, ut1, ut2;  // permuted velocities
  double c, q2, H;
};

Local local_state(int dir, const double q[kNumVars]) {
  const Perm& pm = kPerm[dir];
  Local s;
  const double rho = q[0];
  s.un = q[pm.mom[0]] / rho;
  s.ut1 = q[pm.mom[1]] / rho;
  s.ut2 = q[pm.mom[2]] / rho;
  s.q2 = s.un * s.un + s.ut1 * s.ut1 + s.ut2 * s.ut2;
  const double p = pressure(q);
  s.c = std::sqrt(kGamma * p / rho);
  s.H = (q[4] + p) / rho;
  return s;
}

}  // namespace

void eigenvalues(int dir, const double q[kNumVars], double lam[kNumVars]) {
  const double rho = q[0];
  const double un = q[kPerm[dir].mom[0]] / rho;
  const double c = sound_speed(q);
  lam[0] = un - c;
  lam[1] = un;
  lam[2] = un;
  lam[3] = un;
  lam[4] = un + c;
}

void apply_left(int dir, const double q[kNumVars], const double x[kNumVars],
                double w[kNumVars]) {
  const Perm& pm = kPerm[dir];
  const Local s = local_state(dir, q);

  // Gather x into the permuted component order [rho, m_n, m_t1, m_t2, E].
  const double x0 = x[0];
  const double x1 = x[pm.mom[0]];
  const double x2 = x[pm.mom[1]];
  const double x3 = x[pm.mom[2]];
  const double x4 = x[4];

  const double g = kGamma - 1.0;
  const double b2 = g / (s.c * s.c);
  const double b1 = 0.5 * b2 * s.q2;
  const double uoc = s.un / s.c;

  // Rows of L (see Toro, 3-D Euler, x-split), applied to the permuted x.
  const double common = -b2 * (s.un * x1 + s.ut1 * x2 + s.ut2 * x3) + b2 * x4;
  w[0] = 0.5 * (((b1 + uoc) * x0) - x1 / s.c + common);
  w[1] = (1.0 - b1) * x0 + b2 * (s.un * x1 + s.ut1 * x2 + s.ut2 * x3) -
         b2 * x4;
  w[2] = -s.ut1 * x0 + x2;
  w[3] = -s.ut2 * x0 + x3;
  w[4] = 0.5 * (((b1 - uoc) * x0) + x1 / s.c + common);
}

void apply_right(int dir, const double q[kNumVars], const double w[kNumVars],
                 double x[kNumVars]) {
  const Perm& pm = kPerm[dir];
  const Local s = local_state(dir, q);

  // Columns of R in the permuted order; y = R w.
  const double y0 = w[0] + w[1] + w[4];
  const double y1 =
      (s.un - s.c) * w[0] + s.un * w[1] + (s.un + s.c) * w[4];
  const double y2 = s.ut1 * (w[0] + w[1] + w[4]) + w[2];
  const double y3 = s.ut2 * (w[0] + w[1] + w[4]) + w[3];
  const double y4 = (s.H - s.un * s.c) * w[0] + 0.5 * s.q2 * w[1] +
                    s.ut1 * w[2] + s.ut2 * w[3] +
                    (s.H + s.un * s.c) * w[4];

  // Scatter back to conservative component order.
  x[0] = y0;
  x[pm.mom[0]] = y1;
  x[pm.mom[1]] = y2;
  x[pm.mom[2]] = y3;
  x[4] = y4;
}

}  // namespace f3d
