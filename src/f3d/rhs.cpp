#include "f3d/rhs.hpp"

#include <algorithm>
#include <cmath>

#include "simd/pack.hpp"
#include "util/error.hpp"

namespace f3d {

namespace {

// Four of the five conserved variables ride in pack lanes; the fifth is a
// scalar tail. This TU is compiled at the base ISA, so dpack is the scalar
// reference unless the whole build targets a vector ISA (-march=x86-64-v3
// CI job) — either way the plain operators below are IEEE-identical
// lane-wise, so the stencils stay bitwise stable across configurations.
// fma() is deliberately not used here for that reason.
using dpack = simd::pack<double, 4>;
static_assert(dpack::width < kNumVars, "lane split assumes a scalar tail");

// Neighbor strides in interior index space per direction.
struct Offset {
  int dj, dk, dl;
};
constexpr Offset kOffset[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

// JST dissipation flux at the j+1/2 (or k/l) interface between cells c0 and
// its +1 neighbor, using the four cells c-1..c+2 along the direction.
// Returns d[n]; caller accumulates d_{i+1/2} - d_{i-1/2}.
inline void dissipation_interface(const double* qm1, const double* q0,
                                  const double* qp1, const double* qp2,
                                  int dir, double inv_h, double kappa2,
                                  double kappa4, double d[kNumVars]) {
  const double pm1 = pressure(qm1);
  const double p0 = pressure(q0);
  const double pp1 = pressure(qp1);
  const double pp2 = pressure(qp2);

  // Pressure switch at the two cells adjoining the interface.
  const double nu0 =
      std::abs(pp1 - 2.0 * p0 + pm1) / (pp1 + 2.0 * p0 + pm1);
  const double nu1 =
      std::abs(pp2 - 2.0 * pp1 + p0) / (pp2 + 2.0 * pp1 + p0);
  const double eps2 = kappa2 * std::max(nu0, nu1);
  const double eps4 = std::max(0.0, kappa4 - eps2);

  // Spectral radius averaged across the interface, scaled by 1/h so the
  // dissipation has flux-divergence units.
  const double sig =
      0.5 * (spectral_radius(dir, q0) + spectral_radius(dir, qp1)) * inv_h;

  // First/third differences for the four lane variables, then the tail.
  // Operation order mirrors the scalar expression exactly:
  //   d3 = ((qp2 - 3*qp1) + 3*q0) - qm1.
  const dpack three = dpack::broadcast(3.0);
  const dpack am = dpack::load(qm1), a0 = dpack::load(q0);
  const dpack a1 = dpack::load(qp1), a2 = dpack::load(qp2);
  const dpack d1 = a1 - a0;
  const dpack d3 = ((a2 - three * a1) + three * a0) - am;
  const dpack dv = dpack::broadcast(sig) *
                   (dpack::broadcast(eps2) * d1 - dpack::broadcast(eps4) * d3);
  dv.store(d);
  for (int n = dpack::width; n < kNumVars; ++n) {
    const double s1 = qp1[n] - q0[n];
    const double s3 = qp2[n] - 3.0 * qp1[n] + 3.0 * q0[n] - qm1[n];
    d[n] = sig * (eps2 * s1 - eps4 * s3);
  }
}

}  // namespace

void compute_rhs_plane(const Zone& zone, int l, double dt,
                       const RhsConfig& config, llp::Array4D<double>& rhs) {
  LLP_REQUIRE(l >= 0 && l < zone.lmax(), "plane out of range");
  const int jm = zone.jmax(), km = zone.kmax();
  const double inv_h[3] = {1.0 / zone.dx(), 1.0 / zone.dy(), 1.0 / zone.dz()};
  const int ng = Zone::kGhost;

  double fp[kNumVars], fm[kNumVars];
  double dp[kNumVars], dm[kNumVars];

  for (int k = 0; k < km; ++k) {
    for (int j = 0; j < jm; ++j) {
      double r[kNumVars] = {0.0, 0.0, 0.0, 0.0, 0.0};
      for (int dir = 0; dir < 3; ++dir) {
        const Offset o = kOffset[dir];
        const double* qm2 =
            zone.q_point(j - 2 * o.dj, k - 2 * o.dk, l - 2 * o.dl);
        const double* qm1 = zone.q_point(j - o.dj, k - o.dk, l - o.dl);
        const double* q0 = zone.q_point(j, k, l);
        const double* qp1 = zone.q_point(j + o.dj, k + o.dk, l + o.dl);
        const double* qp2 =
            zone.q_point(j + 2 * o.dj, k + 2 * o.dk, l + 2 * o.dl);

        // Central flux difference: (F_{+1} - F_{-1}) / (2h).
        flux(dir, qp1, fp);
        flux(dir, qm1, fm);
        const double half_inv = 0.5 * inv_h[dir];

        // Dissipation fluxes at the two interfaces of this cell.
        dissipation_interface(qm1, q0, qp1, qp2, dir, inv_h[dir],
                              config.kappa2, config.kappa4, dp);
        dissipation_interface(qm2, qm1, q0, qp1, dir, inv_h[dir],
                              config.kappa2, config.kappa4, dm);

        const dpack hv = dpack::broadcast(half_inv);
        dpack rv = dpack::load(r);
        rv = rv + ((dpack::load(fp) - dpack::load(fm)) * hv -
                   (dpack::load(dp) - dpack::load(dm)));
        rv.store(r);
        for (int n = dpack::width; n < kNumVars; ++n) {
          r[n] += (fp[n] - fm[n]) * half_inv - (dp[n] - dm[n]);
        }
      }
      if (config.viscous.enabled) {
        // Thin-layer viscous divergence in K: (Fv[k+1/2]-Fv[k-1/2])/dy.
        double fvp[kNumVars], fvm[kNumVars];
        viscous_flux_k_face(zone.q_point(j, k, l), zone.q_point(j, k + 1, l),
                            zone.dy(), config.viscous, fvp);
        viscous_flux_k_face(zone.q_point(j, k - 1, l), zone.q_point(j, k, l),
                            zone.dy(), config.viscous, fvm);
        const dpack iv = dpack::broadcast(inv_h[1]);
        dpack rv = dpack::load(r);
        rv = rv - (dpack::load(fvp) - dpack::load(fvm)) * iv;
        rv.store(r);
        for (int n = dpack::width; n < kNumVars; ++n) {
          r[n] -= (fvp[n] - fvm[n]) * inv_h[1];
        }
      }
      // The 5 variables of one cell are contiguous (n is the fastest axis).
      double* out = &rhs(0, j + ng, k + ng, l + ng);
      (dpack::broadcast(-dt) * dpack::load(r)).store(out);
      for (int n = dpack::width; n < kNumVars; ++n) out[n] = -dt * r[n];
    }
  }
}

double rhs_plane_sumsq(const Zone& zone, int l,
                       const llp::Array4D<double>& rhs) {
  const int jm = zone.jmax(), km = zone.kmax();
  const int ng = Zone::kGhost;
  // For a fixed (k, l) the interior of the plane row is one contiguous run
  // of kNumVars*jm doubles (n fastest, then j), so the reduction runs
  // straight-line pack loads with a scalar tail. The pack accumulator plus
  // fixed-tree sum() gives a deterministic reduction order that is
  // identical across scalar and vector pack implementations (see pack.hpp).
  const int count = kNumVars * jm;
  double s = 0.0;
  for (int k = 0; k < km; ++k) {
    const double* row = &rhs(0, ng, k + ng, l + ng);
    dpack acc = dpack::zero();
    int i = 0;
    for (; i + dpack::width <= count; i += dpack::width) {
      const dpack v = dpack::load(row + i);
      acc = acc + v * v;
    }
    double partial = acc.sum();
    for (; i < count; ++i) partial += row[i] * row[i];
    s += partial;
  }
  return s;
}

}  // namespace f3d
