#include "serve/job.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "f3d/engine.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/io.hpp"

namespace f3d::serve {

namespace fs = std::filesystem;

namespace {
// A job.json is a few hundred bytes; reject anything wildly larger rather
// than slurp a corrupted file into memory during restart recovery.
constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 16;
}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempted: return "preempted";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::optional<JobState> job_state_from_name(std::string_view name) noexcept {
  for (const JobState s :
       {JobState::kQueued, JobState::kRunning, JobState::kPreempted,
        JobState::kDone, JobState::kFailed, JobState::kCancelled}) {
    if (name == job_state_name(s)) return s;
  }
  return std::nullopt;
}

bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

bool is_runnable(JobState state) noexcept {
  return state == JobState::kQueued || state == JobState::kPreempted;
}

namespace {

// The same validation posture as f3d_run's flag parser: a bad value is a
// client error with a precise message, never a garbage run.
bool check_range_int(std::int64_t v, std::int64_t lo, std::int64_t hi,
                     const char* what, std::string* error) {
  if (v < lo || v > hi) {
    *error = llp::strfmt("%s=%lld out of range [%lld, %lld]", what,
                         static_cast<long long>(v), static_cast<long long>(lo),
                         static_cast<long long>(hi));
    return false;
  }
  return true;
}

bool check_range_num(double v, double lo, double hi, const char* what,
                     std::string* error) {
  if (!std::isfinite(v) || v < lo || v > hi) {
    *error = llp::strfmt("%s=%g must be finite and in [%g, %g]", what, v, lo,
                         hi);
    return false;
  }
  return true;
}

}  // namespace

std::optional<JobSpec> JobSpec::from_json(const Json& j, std::string* error) {
  std::string scratch;
  if (error == nullptr) error = &scratch;
  if (!j.is_object()) {
    *error = "spec must be a JSON object";
    return std::nullopt;
  }
  JobSpec s;
  s.name = j.get_string("name", "");
  s.case_name = j.get_string("case", s.case_name);
  s.scale = j.get_double("scale", s.scale);
  s.n = static_cast<int>(j.get_int("n", s.n));
  s.steps = static_cast<int>(j.get_int("steps", s.steps));
  s.cfl = j.get_double("cfl", s.cfl);
  s.mode = j.get_string("mode", s.mode);
  s.wall = j.get_bool("wall", s.wall);
  s.pulse = j.get_double("pulse", s.pulse);
  s.priority = static_cast<int>(j.get_int("priority", s.priority));
  s.threads = static_cast<int>(j.get_int("threads", s.threads));
  s.ckpt_every = static_cast<int>(j.get_int("ckpt_every", s.ckpt_every));

  if (s.case_name != "1m" && s.case_name != "59m" && s.case_name != "cube" &&
      s.case_name != "vortex") {
    *error = "unknown case '" + s.case_name + "'";
    return std::nullopt;
  }
  f3d::EngineKind parsed_engine;
  if (!f3d::parse_engine(s.mode, &parsed_engine)) {
    *error = "mode must be one of '" + f3d::engine_names_usage() + "'";
    return std::nullopt;
  }
  if (!check_range_num(s.scale, 1e-6, 1e3, "scale", error)) return std::nullopt;
  if (!check_range_int(s.n, 4, 1 << 12, "n", error)) return std::nullopt;
  if (!check_range_int(s.steps, 1, 1 << 24, "steps", error)) {
    return std::nullopt;
  }
  if (!check_range_num(s.cfl, 1e-9, 1e6, "cfl", error)) return std::nullopt;
  if (!check_range_num(s.pulse, 0.0, 1e3, "pulse", error)) return std::nullopt;
  if (!check_range_int(s.priority, 0, 9, "priority", error)) {
    return std::nullopt;
  }
  if (!check_range_int(s.threads, 0, 1 << 12, "threads", error)) {
    return std::nullopt;
  }
  if (!check_range_int(s.ckpt_every, 0, 1 << 24, "ckpt_every", error)) {
    return std::nullopt;
  }
  return s;
}

Json JobSpec::to_json() const {
  Json j;
  j["name"] = name;
  j["case"] = case_name;
  j["scale"] = scale;
  j["n"] = n;
  j["steps"] = steps;
  j["cfl"] = cfl;
  j["mode"] = mode;
  j["wall"] = wall;
  j["pulse"] = pulse;
  j["priority"] = priority;
  j["threads"] = threads;
  j["ckpt_every"] = ckpt_every;
  return j;
}

std::string JobSpec::fingerprint() const {
  return llp::strfmt("case=%s scale=%g n=%d mode=%s cfl=%g wall=%d pulse=%g",
                     case_name.c_str(), scale, n, mode.c_str(), cfl,
                     wall ? 1 : 0, pulse);
}

f3d::MultiZoneGrid build_case_grid(const JobSpec& spec) {
  f3d::CaseSpec cs;
  if (spec.case_name == "1m") cs = f3d::paper_1m_case(spec.scale);
  else if (spec.case_name == "59m") cs = f3d::paper_59m_case(spec.scale);
  else if (spec.case_name == "cube") cs = f3d::wall_compression_case(spec.n);
  else cs = f3d::vortex_case(spec.n);

  auto grid = f3d::build_grid(cs);
  if (spec.case_name == "vortex") {
    f3d::make_periodic(grid);
    f3d::Vortex v;
    v.x0 = v.y0 = 5.0;
    f3d::initialize_vortex(grid, cs.freestream, v);
  }
  if (spec.wall) f3d::add_kmin_wall(grid);
  if (spec.pulse > 0.0) f3d::add_gaussian_pulse(grid, spec.pulse, 2.5);
  return grid;
}

f3d::SolverConfig build_solver_config(const JobSpec& spec) {
  f3d::CaseSpec cs;
  if (spec.case_name == "1m") cs = f3d::paper_1m_case(spec.scale);
  else if (spec.case_name == "59m") cs = f3d::paper_59m_case(spec.scale);
  else if (spec.case_name == "cube") cs = f3d::wall_compression_case(spec.n);
  else cs = f3d::vortex_case(spec.n);

  f3d::SolverConfig cfg;
  cfg.freestream = cs.freestream;
  cfg.cfl = spec.cfl;
  // from_json validated the spelling; default to the registry's parse so a
  // spec constructed in code with a bad mode string fails loudly here.
  if (!f3d::parse_engine(spec.mode, &cfg.engine)) {
    throw llp::ValidationError("unknown engine '" + spec.mode + "'");
  }
  cfg.region_prefix = "job";
  return cfg;
}

Json JobRecord::to_json() const {
  Json j;
  j["id"] = static_cast<double>(id);
  j["spec"] = spec.to_json();
  j["state"] = job_state_name(state);
  j["steps_done"] = steps_done;
  j["residual"] = residual;
  if (!error.empty()) j["error"] = error;
  return j;
}

std::optional<JobRecord> JobRecord::from_json(const Json& j,
                                              std::string* error) {
  std::string scratch;
  if (error == nullptr) error = &scratch;
  if (!j.is_object()) {
    *error = "job record must be a JSON object";
    return std::nullopt;
  }
  JobRecord r;
  const std::int64_t id = j.get_int("id", -1);
  if (id < 0) {
    *error = "job record missing id";
    return std::nullopt;
  }
  r.id = static_cast<std::uint64_t>(id);
  const Json* spec = j.find("spec");
  if (spec == nullptr) {
    *error = "job record missing spec";
    return std::nullopt;
  }
  auto parsed = JobSpec::from_json(*spec, error);
  if (!parsed.has_value()) return std::nullopt;
  r.spec = std::move(*parsed);
  const auto state = job_state_from_name(j.get_string("state", ""));
  if (!state.has_value()) {
    *error = "job record has unknown state '" + j.get_string("state", "") +
             "'";
    return std::nullopt;
  }
  r.state = *state;
  r.steps_done = static_cast<int>(j.get_int("steps_done", 0));
  r.residual = j.get_double("residual", 0.0);
  r.error = j.get_string("error", "");
  return r;
}

std::string job_dir(const std::string& state_dir, std::uint64_t id) {
  return state_dir + "/jobs/" + std::to_string(id);
}

std::string job_record_path(const std::string& state_dir, std::uint64_t id) {
  return job_dir(state_dir, id) + "/job.json";
}

std::string job_ckpt_dir(const std::string& state_dir, std::uint64_t id) {
  return job_dir(state_dir, id) + "/ckpt";
}

void write_job_record(const std::string& state_dir, const JobRecord& record) {
  const std::string dir = job_dir(state_dir, record.id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw llp::IoError("cannot create job dir " + dir);

  // Same atomic-publish discipline as the checkpoint writer: the record on
  // disk is always a complete previous or complete next version, never a
  // torn one — restart recovery trusts what it parses.
  const std::string final_path = dir + "/job.json";
  const std::string tmp_path = dir + "/job.json.tmp";
  const std::string payload = record.to_json().dump() + "\n";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw llp::IoError("cannot open " + tmp_path);
  const llp::io::IoResult wr =
      llp::io::write_exact(fd, payload.data(), payload.size());
  if (!wr.ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    throw llp::IoError("write failed for " + tmp_path + ": " +
                       std::strerror(wr.error));
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    throw llp::IoError("fsync failed for " + tmp_path);
  }
  ::close(fd);
  fs::rename(tmp_path, final_path, ec);
  if (ec) throw llp::IoError("rename failed for " + final_path);
}

std::optional<JobRecord> read_job_record(const std::string& path,
                                         std::string* error) {
  std::string scratch;
  if (error == nullptr) error = &scratch;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
    if (text.size() > kMaxRecordBytes) break;
  }
  std::fclose(f);
  if (text.size() > kMaxRecordBytes) {
    *error = path + " is implausibly large for a job record";
    return std::nullopt;
  }
  auto j = Json::parse(text, error);
  if (!j.has_value()) {
    *error = path + ": " + *error;
    return std::nullopt;
  }
  return JobRecord::from_json(*j, error);
}

std::string done_event_line(std::uint64_t id, JobState state, int steps,
                            double final_residual) {
  Json j;
  j["event"] = "done";
  j["job"] = static_cast<double>(id);
  j["state"] = job_state_name(state);
  j["steps"] = steps;
  j["final_residual"] = final_residual;
  return j.dump();
}

}  // namespace f3d::serve
