#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <utility>

#include <unistd.h>

#include "ckpt/checkpoint.hpp"
#include "core/runtime.hpp"
#include "serve/scheduler.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace f3d::serve {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

namespace {

// Per-job event retention: enough to replay a long run's recent history
// without letting a million-step job grow an unbounded log. Old lines are
// dropped from the front in blocks; events_base tracks absolute indexing.
constexpr std::size_t kMaxEventLines = 8192;
constexpr std::size_t kEventDropBlock = 1024;

Json error_response(const std::string& message) {
  Json j;
  j["ok"] = false;
  j["error"] = message;
  return j;
}

}  // namespace

Json JobStatus::to_json() const {
  Json j;
  j["ok"] = true;
  j["job"] = static_cast<double>(id);
  j["name"] = spec.name;
  j["case"] = spec.case_name;
  j["state"] = job_state_name(state);
  j["priority"] = spec.priority;
  j["steps"] = steps_done;
  j["target_steps"] = spec.steps;
  j["residual"] = residual;
  j["threads"] = threads;
  j["preemptions"] = preemptions;
  if (resumed_from_step >= 0) j["resumed_from_step"] = resumed_from_step;
  if (!error.empty()) j["error"] = error;
  return j;
}

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.total_threads <= 0) {
    cfg_.total_threads = llp::Runtime::instance().num_threads();
  }
  LLP_REQUIRE(cfg_.max_running >= 1, "max_running must be >= 1");
  LLP_REQUIRE(cfg_.keep_generations >= 1, "keep_generations must be >= 1");
}

Server::~Server() { stop(); }

void Server::start() {
  LLP_REQUIRE(!started_, "server already started");
  recover_state();
  if (!cfg_.socket_path.empty()) {
    std::string err;
    listen_sock_ = listen_unix(cfg_.socket_path, cfg_.backlog, &err);
    if (!listen_sock_.valid()) {
      throw llp::Error("serve: " + err);
    }
  }
  started_ = true;
  scheduler_ = std::thread(&Server::scheduler_loop, this);
  if (listen_sock_.valid()) {
    acceptor_ = std::thread(&Server::accept_loop, this);
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    draining_ = true;
    // Graceful: every running job checkpoints and requeues, exactly the
    // preemption path — restart picks them all up from their newest
    // generation.
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) job->preempt_requested = true;
    }
    cv_.notify_all();
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& s : sessions_) s->sock.shutdown_both();
  for (auto& s : sessions_) {
    if (s->thread.joinable()) s->thread.join();
  }
  sessions_.clear();
  if (scheduler_.joinable()) scheduler_.join();
  listen_sock_.close();
  if (!cfg_.socket_path.empty()) ::unlink(cfg_.socket_path.c_str());
}

void Server::recover_state() {
  if (cfg_.state_dir.empty()) return;
  const fs::path jobs_root = fs::path(cfg_.state_dir) / "jobs";
  std::error_code ec;
  if (!fs::is_directory(jobs_root, ec)) return;

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : fs::directory_iterator(jobs_root, ec)) {
    std::string error;
    auto record =
        read_job_record((entry.path() / "job.json").string(), &error);
    if (!record.has_value()) continue;  // torn/alien dirs are not jobs
    auto job = std::make_unique<Job>();
    job->id = record->id;
    job->seq = record->id;  // admission order == id order for recovery
    job->spec = record->spec;
    job->steps_done = record->steps_done;
    job->residual = record->residual;
    job->error = record->error;
    if (is_terminal(record->state)) {
      job->state = record->state;
    } else {
      // The daemon died with this job in flight. Requeue it; its runner
      // resumes from the newest intact checkpoint generation.
      job->state = JobState::kQueued;
      Json e;
      e["event"] = "recovered";
      e["job"] = static_cast<double>(job->id);
      e["step"] = job->steps_done;
      push_event_locked(*job, e.dump());
      persist_job_locked(*job);
    }
    next_id_ = std::max(next_id_, job->id + 1);
    jobs_.emplace(job->id, std::move(job));
  }
  next_seq_ = next_id_;
}

// ---- public API ------------------------------------------------------

std::uint64_t Server::submit(const JobSpec& spec, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || draining_) {
    if (error != nullptr) {
      *error = stopping_ ? "server is stopping" : "server is draining";
    }
    return 0;
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->seq = next_seq_++;
  job->spec = spec;
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  Json e;
  e["event"] = "queued";
  e["job"] = static_cast<double>(raw->id);
  e["priority"] = spec.priority;
  push_event_locked(*raw, e.dump());
  persist_job_locked(*raw);
  cv_.notify_all();
  return raw->id;
}

std::optional<JobStatus> Server::status(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Job* job = find_job_locked(id);
  if (job == nullptr) return std::nullopt;
  return status_locked(*job);
}

std::vector<JobStatus> Server::list() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (auto& [id, job] : jobs_) out.push_back(status_locked(*job));
  return out;
}

bool Server::cancel(std::uint64_t id, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  Job* job = find_job_locked(id);
  if (job == nullptr) {
    if (error != nullptr) *error = "unknown job " + std::to_string(id);
    return false;
  }
  if (is_terminal(job->state)) {
    if (error != nullptr) {
      *error = llp::strfmt("job %llu already terminal (%s)",
                           static_cast<unsigned long long>(id),
                           job_state_name(job->state));
    }
    return false;
  }
  job->cancel_requested = true;  // idempotent while the job is live
  cv_.notify_all();
  return true;
}

void Server::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool Server::draining() {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool Server::wait_terminal(std::uint64_t id, double timeout_s,
                           JobStatus* out) {
  std::unique_lock<std::mutex> lock(mu_);
  Job* job = find_job_locked(id);
  if (job == nullptr) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s < 0 ? 0 : timeout_s));
  while (!is_terminal(job->state) && !stopping_) {
    if (timeout_s < 0) {
      cv_.wait_for(lock, 200ms);
    } else {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          std::chrono::steady_clock::now() >= deadline) {
        break;
      }
    }
  }
  if (out != nullptr) *out = status_locked(*job);
  return is_terminal(job->state);
}

std::vector<std::string> Server::events_since(std::uint64_t id,
                                              std::size_t from,
                                              std::size_t* next) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  Job* job = find_job_locked(id);
  if (job == nullptr) {
    if (next != nullptr) *next = from;
    return out;
  }
  std::size_t cursor = std::max(from, job->events_base);
  for (; cursor < job->events_base + job->events.size(); ++cursor) {
    out.push_back(job->events[cursor - job->events_base]);
  }
  if (next != nullptr) *next = cursor;
  return out;
}

bool Server::shutdown_requested() {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

bool Server::wait_shutdown(double timeout_s) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
               [&] { return shutdown_requested_ || stopping_; });
  return shutdown_requested_;
}

// ---- internals (mu_ held) --------------------------------------------

Server::Job* Server::find_job_locked(std::uint64_t id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

JobStatus Server::status_locked(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.spec = job.spec;
  s.state = job.state;
  s.steps_done = job.steps_done;
  s.residual = job.residual;
  s.threads = job.state == JobState::kRunning ? job.threads : 0;
  s.resumed_from_step = job.resumed_from_step;
  s.preemptions = job.preemptions;
  s.error = job.error;
  return s;
}

void Server::push_event_locked(Job& job, std::string line) {
  job.events.push_back(std::move(line));
  if (job.events.size() > kMaxEventLines) {
    job.events.erase(job.events.begin(),
                     job.events.begin() + kEventDropBlock);
    job.events_base += kEventDropBlock;
  }
  cv_.notify_all();
}

void Server::persist_job_locked(Job& job) {
  if (cfg_.state_dir.empty()) return;
  JobRecord record;
  record.id = job.id;
  record.spec = job.spec;
  record.state = job.state;
  record.steps_done = job.steps_done;
  record.residual = job.residual;
  record.error = job.error;
  try {
    write_job_record(cfg_.state_dir, record);
  } catch (const llp::IoError& e) {
    // A failed record write must not take the job down; the previous
    // record still stands and the event log says what happened.
    Json ev;
    ev["event"] = "record_write_failed";
    ev["job"] = static_cast<double>(job.id);
    ev["error"] = std::string(e.what());
    push_event_locked(job, ev.dump());
  }
}

// ---- scheduler -------------------------------------------------------

void Server::reap_runners(std::unique_lock<std::mutex>& lock) {
  for (auto& [id, job] : jobs_) {
    if (job->runner_done && job->runner.joinable()) {
      std::thread th = std::move(job->runner);
      job->runner_done = false;
      lock.unlock();
      th.join();
      lock.lock();
    }
  }
}

void Server::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    reap_runners(lock);
    if (stopping_) {
      bool busy = false;
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning || job->runner.joinable() ||
            job->runner_done) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
    } else {
      dispatch_locked();
    }
    cv_.wait_for(lock, 200ms);
  }
}

void Server::dispatch_locked() {
  while (true) {
    // Queued jobs already cancelled never need a runner.
    for (auto& [id, job] : jobs_) {
      if (is_runnable(job->state) && job->cancel_requested &&
          !job->runner.joinable()) {
        job->state = JobState::kCancelled;
        push_event_locked(*job, done_event_line(job->id, job->state,
                                                job->steps_done,
                                                job->residual));
        persist_job_locked(*job);
      }
    }

    std::vector<Job*> running;
    std::vector<SchedJob> queued;
    std::vector<Job*> queued_jobs;
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) running.push_back(job.get());
      if (is_runnable(job->state) && !job->runner.joinable() &&
          !job->runner_done) {
        queued.push_back(SchedJob{job->id, job->seq, job->spec.priority,
                                  job->spec.threads});
        queued_jobs.push_back(job.get());
      }
    }
    const auto next = pick_next(queued);
    if (!next.has_value()) return;
    Job* incoming = queued_jobs[*next];

    if (static_cast<int>(running.size()) >= cfg_.max_running) {
      // Full house: the incoming job may evict a strictly weaker one.
      std::vector<SchedJob> running_sched;
      running_sched.reserve(running.size());
      for (Job* j : running) {
        running_sched.push_back(
            SchedJob{j->id, j->seq, j->spec.priority, j->spec.threads});
      }
      const auto victim =
          pick_victim(running_sched, incoming->spec.priority);
      if (victim.has_value()) {
        running[*victim]->preempt_requested = true;
        cv_.notify_all();
      }
      return;  // either way, wait for a slot to free
    }

    // Start the incoming job with its fair share of the pool; refresh the
    // shares of every auto job already running (their runners apply the
    // new count between steps).
    running.push_back(incoming);
    std::vector<int> pins;
    pins.reserve(running.size());
    for (Job* j : running) pins.push_back(j->spec.threads);
    const std::vector<int> shares = fair_shares(cfg_.total_threads, pins);
    for (std::size_t i = 0; i < running.size(); ++i) {
      running[i]->desired_threads = shares[i];
    }
    incoming->threads = shares.back();
    incoming->state = JobState::kRunning;
    incoming->preempt_requested = false;
    Json e;
    e["event"] = "started";
    e["job"] = static_cast<double>(incoming->id);
    e["threads"] = incoming->threads;
    push_event_locked(*incoming, e.dump());
    persist_job_locked(*incoming);
    incoming->runner = std::thread(&Server::runner_loop, this, incoming);
  }
}

// ---- the per-job runner ----------------------------------------------

void Server::runner_loop(Job* job) {
  JobSpec spec;
  int threads = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = job->spec;
    threads = job->threads;
  }

  // Terminal outcome, decided inside the try block and committed at the
  // bottom so every exit path shares one bookkeeping sequence.
  JobState final_state = JobState::kFailed;
  std::string failure;
  int final_steps = 0;
  double final_residual = std::numeric_limits<double>::quiet_NaN();

  try {
    // THE tenant boundary: this job's own runtime. Every loop the solver
    // runs, every event its checkpoint writer emits, and every region it
    // defines lives here — invisible to other jobs and to the process
    // default.
    llp::Runtime rt(threads);
    llp::RuntimeScope rt_scope(rt);

    // Forward the runtime's durability/recovery events into the job's
    // protocol event stream. Step events are pushed by the loop below
    // (they need the residual, which core events do not carry).
    struct Forwarder final : llp::RuntimeObserver {
      Server* srv;
      Job* job;
      void on_event(const llp::Event& ev) override {
        if (ev.kind != llp::EventKind::kCkptDurable &&
            ev.kind != llp::EventKind::kRollback) {
          return;
        }
        Json e;
        e["job"] = static_cast<double>(job->id);
        if (ev.kind == llp::EventKind::kCkptDurable) {
          e["event"] = "ckpt";
          e["generation"] = static_cast<double>(ev.a);
          e["step"] = static_cast<double>(ev.b);
        } else {
          e["event"] = "rollback";
          e["step"] = static_cast<double>(ev.a);
        }
        std::lock_guard<std::mutex> lock(srv->mu_);
        srv->push_event_locked(*job, e.dump());
      }
    } forwarder;
    forwarder.srv = this;
    forwarder.job = job;
    rt.add_observer(&forwarder);
    struct ObserverGuard {
      llp::Runtime& rt;
      Forwarder& fwd;
      ~ObserverGuard() { rt.remove_observer(&fwd); }
    } observer_guard{rt, forwarder};

    auto grid = build_case_grid(spec);
    const f3d::SolverConfig cfg = build_solver_config(spec);

    std::unique_ptr<f3d::ckpt::CheckpointStore> store;
    if (!cfg_.state_dir.empty()) {
      f3d::ckpt::Config cc;
      cc.dir = job_ckpt_dir(cfg_.state_dir, job->id);
      cc.every = spec.ckpt_every;  // <= 0: flush-only (preemption still works)
      cc.keep_generations = cfg_.keep_generations;
      cc.meta = spec.fingerprint();
      store = std::make_unique<f3d::ckpt::CheckpointStore>(cc);
    }

    // Resume ladder (same walk as f3d_run --restart=auto): newest intact
    // generation whose first replay verifies wins; no generation, or all
    // rejected, means a fresh start.
    std::optional<f3d::Solver> solver;
    if (store != nullptr) {
      for (const int gen : store->generations()) {
        solver.reset();
        grid = build_case_grid(spec);
        f3d::ckpt::Manifest man;
        try {
          man = store->load(gen, grid);
        } catch (const llp::IoError&) {
          continue;
        }
        solver.emplace(grid, cfg, rt);
        solver->restore(man.state);
        std::string why;
        if (!f3d::ckpt::verify_first_replay(
                *solver, man, store->config().replay_tol, &why)) {
          continue;
        }
        Json e;
        e["event"] = "resumed";
        e["job"] = static_cast<double>(job->id);
        e["generation"] = gen;
        e["step"] = man.state.steps;
        std::lock_guard<std::mutex> lock(mu_);
        job->resumed_from_step = man.state.steps;
        job->steps_done = solver->steps_taken();
        job->residual = solver->residual();
        push_event_locked(*job, e.dump());
        break;
      }
      if (!solver.has_value()) grid = build_case_grid(spec);
    }
    if (!solver.has_value()) solver.emplace(grid, cfg, rt);

    bool cancelled = false;
    bool preempted = false;
    while (solver->steps_taken() < spec.steps) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (job->cancel_requested) {
          cancelled = true;
          break;
        }
        if (job->preempt_requested) {
          preempted = true;
          break;
        }
        // Fair-share rebalance: auto jobs track the scheduler's current
        // share between steps; pinned jobs never change lane count (their
        // residual trajectory is part of the contract).
        if (spec.threads == 0 && job->desired_threads > 0 &&
            job->desired_threads != rt.num_threads()) {
          rt.set_num_threads(job->desired_threads);
          job->threads = job->desired_threads;
        }
      }
      solver->step();
      if (store != nullptr) {
        try {
          store->on_healthy_step(grid, solver->state());
        } catch (const llp::IoError& e) {
          // Same stance as run_protected: a failed durable write is a
          // diagnostic; the run continues on the previous generation.
          Json ev;
          ev["event"] = "ckpt_write_failed";
          ev["job"] = static_cast<double>(job->id);
          ev["error"] = std::string(e.what());
          std::lock_guard<std::mutex> lock(mu_);
          push_event_locked(*job, ev.dump());
        }
      }
      {
        Json e;
        e["event"] = "step";
        e["job"] = static_cast<double>(job->id);
        e["step"] = solver->steps_taken();
        e["residual"] = solver->residual();
        std::lock_guard<std::mutex> lock(mu_);
        job->steps_done = solver->steps_taken();
        job->residual = solver->residual();
        push_event_locked(*job, e.dump());
      }
    }

    final_steps = solver->steps_taken();
    final_residual = solver->residual();
    if (cancelled) {
      final_state = JobState::kCancelled;
    } else if (preempted) {
      if (store != nullptr) {
        try {
          store->flush(grid, solver->state());
        } catch (const llp::IoError& e) {
          failure = e.what();  // noted, not fatal: an older generation stands
        }
      }
      final_state = JobState::kPreempted;
    } else {
      if (store != nullptr) {
        try {
          store->flush(grid, solver->state());
        } catch (const llp::IoError& e) {
          failure = e.what();
        }
      }
      final_state = JobState::kDone;
    }
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    failure = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job->state = final_state;
    if (final_state != JobState::kFailed) {
      job->steps_done = final_steps;
      job->residual = final_residual;
    }
    if (!failure.empty() && job->error.empty()) job->error = failure;
    if (final_state == JobState::kPreempted) {
      ++job->preemptions;
      job->preempt_requested = false;
      Json e;
      e["event"] = "preempted";
      e["job"] = static_cast<double>(job->id);
      e["step"] = job->steps_done;
      push_event_locked(*job, e.dump());
    } else {
      push_event_locked(*job, done_event_line(job->id, final_state,
                                              job->steps_done,
                                              job->residual));
    }
    persist_job_locked(*job);
    job->runner_done = true;
    cv_.notify_all();
  }
}

// ---- the socket face -------------------------------------------------

void Server::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    std::string err;
    Socket conn =
        accept_with_timeout(listen_sock_.fd(), /*timeout_ms=*/200, &err);
    // Reap sessions whose loop has returned, so a long-lived daemon does
    // not accumulate dead threads.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        done = (*it)->done;
      }
      if (done) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    if (!conn.valid()) continue;
    auto session = std::make_unique<Session>();
    session->sock = std::move(conn);
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->thread = std::thread(&Server::session_loop, this, raw);
  }
}

void Server::session_loop(Session* session) {
  LineReader reader(session->sock.fd());
  const int fd = session->sock.fd();
  std::string line;
  std::string err;
  while (true) {
    const LineReader::Result res = reader.next_line(&line, &err);
    if (res == LineReader::Result::kEof ||
        res == LineReader::Result::kError) {
      break;
    }
    if (res == LineReader::Result::kOversize) {
      write_line(fd, error_response(llp::strfmt(
                         "line exceeds %zu byte limit", kMaxLine))
                         .dump());
      break;  // the stream is unframed garbage from here; drop the peer
    }
    if (line.empty()) continue;
    std::string parse_err;
    const auto req = Json::parse(line, &parse_err);
    if (!req.has_value()) {
      if (!write_line(fd, error_response("parse error: " + parse_err).dump())) {
        break;
      }
      continue;
    }
    if (!req->is_object()) {
      if (!write_line(fd,
                      error_response("request must be a JSON object").dump())) {
        break;
      }
      continue;
    }
    if (req->get_string("op") == "events") {
      if (!handle_events(fd, *req)) break;
      continue;
    }
    if (!write_line(fd, handle_request(*req).dump())) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  session->done = true;
}

Json Server::handle_request(const Json& req) {
  const std::string op = req.get_string("op");
  if (op == "ping") {
    Json j;
    j["ok"] = true;
    j["pong"] = true;
    return j;
  }
  if (op == "submit") {
    const Json* spec_json = req.find("spec");
    const Json empty{Json::Object{}};
    std::string error;
    auto spec = JobSpec::from_json(
        spec_json != nullptr ? *spec_json : empty, &error);
    if (!spec.has_value()) return error_response(error);
    const std::uint64_t id = submit(*spec, &error);
    if (id == 0) return error_response(error);
    Json j;
    j["ok"] = true;
    j["job"] = static_cast<double>(id);
    return j;
  }
  if (op == "status") {
    const auto s = status(static_cast<std::uint64_t>(req.get_int("job", 0)));
    if (!s.has_value()) {
      return error_response("unknown job " +
                            std::to_string(req.get_int("job", 0)));
    }
    return s->to_json();
  }
  if (op == "list") {
    Json::Array arr;
    for (const JobStatus& s : list()) arr.push_back(s.to_json());
    Json j;
    j["ok"] = true;
    j["jobs"] = Json(std::move(arr));
    return j;
  }
  if (op == "cancel") {
    std::string error;
    if (!cancel(static_cast<std::uint64_t>(req.get_int("job", 0)), &error)) {
      return error_response(error);
    }
    Json j;
    j["ok"] = true;
    j["job"] = static_cast<double>(req.get_int("job", 0));
    return j;
  }
  if (op == "wait") {
    const auto id = static_cast<std::uint64_t>(req.get_int("job", 0));
    const double timeout_s = req.get_double("timeout_ms", -1.0) < 0
                                 ? -1.0
                                 : req.get_double("timeout_ms") / 1000.0;
    JobStatus out;
    if (!wait_terminal(id, timeout_s, &out)) {
      if (status(id).has_value()) return error_response("timeout");
      return error_response("unknown job " + std::to_string(id));
    }
    return out.to_json();
  }
  if (op == "drain") {
    drain();
    Json j;
    j["ok"] = true;
    j["draining"] = true;
    return j;
  }
  if (op == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      cv_.notify_all();
    }
    Json j;
    j["ok"] = true;
    j["stopping"] = true;
    return j;
  }
  return error_response("unknown op '" + op + "'");
}

bool Server::handle_events(int fd, const Json& req) {
  const auto id = static_cast<std::uint64_t>(req.get_int("job", 0));
  const bool follow = req.get_bool("follow", true);
  std::size_t cursor = static_cast<std::size_t>(
      std::max<std::int64_t>(0, req.get_int("from", 0)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (find_job_locked(id) == nullptr) {
      return write_line(
          fd, error_response("unknown job " + std::to_string(id)).dump());
    }
  }
  while (true) {
    bool terminal = false;
    std::vector<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      Job* job = find_job_locked(id);
      cursor = std::max(cursor, job->events_base);
      while (cursor < job->events_base + job->events.size()) {
        batch.push_back(job->events[cursor - job->events_base]);
        ++cursor;
      }
      terminal = is_terminal(job->state);
      if (batch.empty() && !terminal && follow && !stopping_) {
        cv_.wait_for(lock, 200ms);
        continue;
      }
    }
    for (const std::string& line : batch) {
      if (!write_line(fd, line)) return false;
    }
    // The terminal event line (pushed at the terminal transition) is the
    // last line of the stream; the connection then returns to request
    // mode. A stream that ends before the job does (--no-follow, or the
    // server is stopping) gets an explicit end marker so the client is
    // never left blocking on a line that will not come.
    bool stopping_now;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_now = stopping_;
    }
    if (terminal || !follow || stopping_now) {
      if (!terminal) {
        Json end;
        end["end"] = true;
        end["next"] = static_cast<double>(cursor);
        if (!write_line(fd, end.dump())) return false;
      }
      return true;
    }
  }
}

}  // namespace f3d::serve
