// Socket plumbing for the serve protocol: AF_UNIX stream sockets and
// newline-delimited framing with a hard line-length cap.
//
// The framing rule is deliberately dumb: one request or response per
// '\n'-terminated line, at most kMaxLine bytes including the terminator.
// A peer that streams an overlong line is told so once and disconnected —
// the daemon never buffers unbounded input from a client.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace f3d::serve {

/// Upper bound on one protocol line, terminator included.
inline constexpr std::size_t kMaxLine = std::size_t{1} << 20;  // 1 MiB

/// Move-only owner of a file descriptor.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Release ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;
  /// shutdown(2) both directions — unblocks a thread parked in read().
  void shutdown_both() noexcept;

private:
  int fd_ = -1;
};

/// Bind + listen on a unix socket path. Any stale socket file at `path` is
/// removed first (the daemon owns its socket path). Invalid socket + *err
/// on failure.
Socket listen_unix(const std::string& path, int backlog, std::string* err);

/// Connect to a unix socket path. Invalid socket + *err on failure.
Socket connect_unix(const std::string& path, std::string* err);

/// Accept with a poll timeout so the accept loop can observe a stop flag.
/// Returns an invalid socket on timeout (err empty) and on error (err set).
Socket accept_with_timeout(int listen_fd, int timeout_ms, std::string* err);

/// Write `line` plus a terminating '\n' (SIGPIPE suppressed). False when
/// the peer is gone or the write fails.
bool write_line(int fd, std::string_view line, std::string* err = nullptr);

/// Buffered line reader over a socket.
class LineReader {
public:
  enum class Result {
    kLine,      ///< out holds one line (terminator stripped)
    kEof,       ///< orderly shutdown at a line boundary
    kError,     ///< read error (err describes it)
    kOversize,  ///< peer exceeded kMaxLine; the connection must be dropped
  };

  explicit LineReader(int fd) noexcept : fd_(fd) {}

  /// Block until one full line, EOF, or error.
  Result next_line(std::string* out, std::string* err = nullptr);

private:
  int fd_;
  std::string buf_;
  bool oversize_ = false;
};

}  // namespace f3d::serve
