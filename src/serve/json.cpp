#include "serve/json.hpp"

#include <cmath>
#include <cstdio>

namespace f3d::serve {

namespace {

constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // %.17g round-trips every double; integers print without a point, so
  // counters look like counters on the wire.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void dump_value(std::string& out, const Json& j) {
  switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: append_number(out, j.as_double()); break;
    case Json::Type::kString: append_escaped(out, j.as_string()); break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& e : j.array()) {
        if (!first) out += ',';
        first = false;
        dump_value(out, e);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.object()) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        dump_value(out, v);
      }
      out += '}';
      break;
    }
  }
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(unsigned& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    pos += 4;
    out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos;
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!literal("\\u")) return fail("lone high surrogate");
            unsigned lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape character");
      }
    }
  }

  bool parse_number(double& out) {
    const std::size_t start = pos;
    if (consume('-')) {}
    if (!consume('0')) {
      if (pos >= text.size() || text[pos] < '1' || text[pos] > '9') {
        pos = start;
        return fail("expected number");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (consume('.')) {
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("digit required after decimal point");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("digit required in exponent");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    out = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out)) return fail("number out of double range");
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out = Json(nullptr);
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out = Json(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      Json::Array arr;
      skip_ws();
      if (consume(']')) {
        out = Json(std::move(arr));
        return true;
      }
      while (true) {
        Json elem;
        if (!parse_value(elem, depth + 1)) return false;
        arr.push_back(std::move(elem));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']' in array");
      }
      out = Json(std::move(arr));
      return true;
    }
    if (c == '{') {
      ++pos;
      Json::Object obj;
      skip_ws();
      if (consume('}')) {
        out = Json(std::move(obj));
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':' after object key");
        Json value;
        if (!parse_value(value, depth + 1)) return false;
        obj[std::move(key)] = std::move(value);
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}' in object");
      }
      out = Json(std::move(obj));
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      double d = 0.0;
      if (!parse_number(d)) return false;
      out = Json(d);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return out;
}

}  // namespace f3d::serve
