// Client side of the serve protocol: connect, one-line request/response,
// and event streaming. Used by tools/f3d_submit and the tests; the
// daemon's wire format is defined entirely by src/serve/server.cpp and
// this file just frames it.
#pragma once

#include <optional>
#include <string>

#include "serve/json.hpp"
#include "serve/wire.hpp"

namespace f3d::serve {

class Client {
public:
  /// Connect to a daemon socket. Disconnected client + *err on failure.
  static Client connect(const std::string& socket_path,
                        std::string* err = nullptr);

  Client() = default;
  bool connected() const { return sock_.valid(); }

  /// Send one request object and read one response line. False on
  /// transport failure (*err) — a protocol-level {"ok":false,...} is
  /// still a successful round trip.
  bool request(const Json& req, Json* response, std::string* err = nullptr);

  /// Read one server line and parse it (for streams started with the
  /// `events` op). nullopt on EOF/error.
  std::optional<Json> read_json_line(std::string* err = nullptr);

  /// Send one raw request line without reading a response.
  bool send(const Json& req, std::string* err = nullptr);

  int fd() const { return sock_.fd(); }

private:
  Socket sock_;
  std::optional<LineReader> reader_;
};

}  // namespace f3d::serve
