// Minimal JSON value for the serve wire protocol.
//
// The daemon's protocol is line-delimited JSON objects, so the needs are
// modest: the six JSON types, strict recursive-descent parsing with a
// depth limit, and a serializer whose number formatting round-trips
// doubles exactly (%.17g) — residuals cross the wire as text and the
// kill-and-resume tests compare them bitwise. Objects keep their keys
// sorted (std::map), so a value serializes to the same bytes everywhere:
// event lines are comparable as strings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace f3d::serve {

class Json {
public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(std::int64_t i) : v_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : v_(static_cast<double>(i)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_double() const { return std::get<double>(v_); }
  std::int64_t as_int() const {
    return static_cast<std::int64_t>(std::get<double>(v_));
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& array() const { return std::get<Array>(v_); }
  Array& array() { return std::get<Array>(v_); }
  const Object& object() const { return std::get<Object>(v_); }
  Object& object() { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object().find(key);
    return it == object().end() ? nullptr : &it->second;
  }

  // Typed getters with defaults — missing or wrong-typed members yield the
  // fallback; protocol handlers validate separately where it matters.
  std::string get_string(const std::string& key,
                         const std::string& fallback = {}) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_string()) ? j->as_string() : fallback;
  }
  double get_double(const std::string& key, double fallback = 0.0) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_number()) ? j->as_double() : fallback;
  }
  std::int64_t get_int(const std::string& key,
                       std::int64_t fallback = 0) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_number()) ? j->as_int() : fallback;
  }
  bool get_bool(const std::string& key, bool fallback = false) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_bool()) ? j->as_bool() : fallback;
  }

  /// Object member insert/update (converts a null value to an object).
  Json& operator[](const std::string& key) {
    if (is_null()) v_ = Object{};
    return std::get<Object>(v_)[key];
  }

  /// Compact single-line serialization (doubles as %.17g, NaN/Inf as
  /// null — JSON has no non-finite numbers). Never contains a newline,
  /// so a dumped value is always a valid wire line.
  std::string dump() const;

  /// Strict parse of exactly one JSON value (trailing garbage is an
  /// error). Nesting is capped at 64 levels. On failure returns nullopt
  /// and describes the problem in *error.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace f3d::serve
