#include "serve/client.hpp"

namespace f3d::serve {

Client Client::connect(const std::string& socket_path, std::string* err) {
  Client c;
  c.sock_ = connect_unix(socket_path, err);
  if (c.sock_.valid()) c.reader_.emplace(c.sock_.fd());
  return c;
}

bool Client::send(const Json& req, std::string* err) {
  if (!connected()) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  return write_line(sock_.fd(), req.dump(), err);
}

bool Client::request(const Json& req, Json* response, std::string* err) {
  if (!send(req, err)) return false;
  auto line = read_json_line(err);
  if (!line.has_value()) return false;
  *response = std::move(*line);
  return true;
}

std::optional<Json> Client::read_json_line(std::string* err) {
  if (!connected()) {
    if (err != nullptr) *err = "not connected";
    return std::nullopt;
  }
  std::string line;
  while (true) {
    const LineReader::Result res = reader_->next_line(&line, err);
    if (res == LineReader::Result::kEof) {
      if (err != nullptr && err->empty()) *err = "connection closed";
      return std::nullopt;
    }
    if (res == LineReader::Result::kError) return std::nullopt;
    if (res == LineReader::Result::kOversize) {
      if (err != nullptr) *err = "server sent an oversized line";
      return std::nullopt;
    }
    if (line.empty()) continue;
    std::string parse_err;
    auto j = Json::parse(line, &parse_err);
    if (!j.has_value()) {
      if (err != nullptr) *err = "bad server line: " + parse_err;
      return std::nullopt;
    }
    return j;
  }
}

}  // namespace f3d::serve
