// Job model for the serve daemon: what a tenant submits, the lifecycle
// states the scheduler moves it through, and the durable per-job record
// that survives a daemon kill.
//
// A JobSpec is the serve-side analogue of f3d_run's command line: the
// same cases, the same validation ranges, and the same fingerprint
// discipline — the spec fingerprint is stamped into every checkpoint
// manifest, so a daemon restarted with a tampered state directory refuses
// to resume a job onto the wrong physics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "f3d/cases.hpp"
#include "f3d/multizone.hpp"
#include "f3d/solver.hpp"
#include "serve/json.hpp"

namespace f3d::serve {

/// Lifecycle of a submitted job. Queued/preempted jobs are runnable;
/// done/failed/cancelled are terminal. A preempted job was checkpointed
/// and pulled off the pool by the scheduler and will be re-dispatched.
enum class JobState {
  kQueued,
  kRunning,
  kPreempted,
  kDone,
  kFailed,
  kCancelled,
};

const char* job_state_name(JobState state) noexcept;
std::optional<JobState> job_state_from_name(std::string_view name) noexcept;
bool is_terminal(JobState state) noexcept;
bool is_runnable(JobState state) noexcept;

/// What a tenant submits. Defaults match f3d_run's.
struct JobSpec {
  std::string name;            ///< free-form label, echoed in status
  std::string case_name = "cube";  ///< 1m | 59m | cube | vortex
  double scale = 0.15;         ///< 1m/59m zone-dimension scale
  int n = 24;                  ///< cube/vortex size
  int steps = 50;
  double cfl = 2.0;
  std::string mode = "risc";   ///< engine name (f3d::engine_names_usage())
  bool wall = false;
  double pulse = 0.0;
  int priority = 0;            ///< 0 (lowest) .. 9; higher may preempt lower
  /// Loop-level threads. > 0 pins the job's runtime to exactly this many
  /// lanes — the residual trajectory is then reproducible across restarts
  /// and re-dispatches. 0 lets the scheduler fair-share the pool, which
  /// may change between steps.
  int threads = 0;
  /// Healthy steps between durable checkpoint generations; 0 disables
  /// periodic snapshots (the job still flushes one on preemption).
  int ckpt_every = 10;

  /// Validate and convert. On failure returns nullopt and sets *error to
  /// a usage-style message (the protocol relays it verbatim).
  static std::optional<JobSpec> from_json(const Json& j, std::string* error);
  Json to_json() const;

  /// Config fingerprint recorded in checkpoint manifests (same role as
  /// f3d_run's): a resume onto different physics must be refused.
  std::string fingerprint() const;
};

/// Grid + solver config for a spec (the serve twin of f3d_run's case
/// setup).
f3d::MultiZoneGrid build_case_grid(const JobSpec& spec);
f3d::SolverConfig build_solver_config(const JobSpec& spec);

/// Durable per-job record, written atomically to
/// <state_dir>/jobs/<id>/job.json at every state transition. This is what
/// daemon restart recovery scans: a non-terminal record means the job was
/// in flight when the process died and must be requeued.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  int steps_done = 0;
  double residual = 0.0;
  std::string error;

  Json to_json() const;
  static std::optional<JobRecord> from_json(const Json& j,
                                            std::string* error);
};

/// Directory layout helpers under the daemon's state root.
std::string job_dir(const std::string& state_dir, std::uint64_t id);
std::string job_record_path(const std::string& state_dir, std::uint64_t id);
std::string job_ckpt_dir(const std::string& state_dir, std::uint64_t id);

/// Atomically persist `record` (tmp + fsync + rename, the checkpoint
/// writer's discipline). Throws llp::IoError on failure.
void write_job_record(const std::string& state_dir, const JobRecord& record);

/// Load one job.json; nullopt (with *error) when missing or invalid.
std::optional<JobRecord> read_job_record(const std::string& path,
                                         std::string* error);

/// The terminal event line for a finished job — shared with f3d_run's
/// --serve-compat mode so the batch CLI and the daemon emit byte-identical
/// completion records (residual via the JSON %.17g path).
std::string done_event_line(std::uint64_t id, JobState state, int steps,
                            double final_residual);

}  // namespace f3d::serve
