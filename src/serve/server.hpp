// The serve daemon core: a long-lived multi-tenant solver host.
//
// One Server owns a job table, a scheduler thread, one runner thread per
// running job, and (optionally) an AF_UNIX accept loop speaking the
// line-delimited JSON protocol (ops: ping, submit, status, list, cancel,
// events, wait, drain, shutdown). Each job runs on its OWN llp::Runtime —
// pool, region registry, observers, watchdog all per tenant — so nothing a
// job does (tuning, faulting, hanging a lane) leaks into its neighbours.
//
// Scheduling is priority + fair share (src/serve/scheduler.hpp): the
// running set is capped at max_running; a queued job that outranks the
// weakest running job triggers checkpoint-preemption — the victim writes
// a durable generation via src/ckpt, leaves the pool, and requeues behind
// the newcomer. The same flush-and-requeue path implements graceful stop,
// and the durable job.json records let start() resume every in-flight job
// from its newest intact checkpoint generation after a SIGKILL.
//
// Concurrency: one mutex guards the job table and every Job field; one
// condition variable wakes the scheduler, event streams, and waiters.
// Runner threads only touch solver state they own plus Job fields under
// the lock — the layout is deliberately coarse so TSan can vouch for it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/wire.hpp"

namespace f3d::serve {

struct ServerConfig {
  /// Unix socket to serve the protocol on; empty runs the server purely
  /// in-process (tests, the throughput bench).
  std::string socket_path;
  /// Durable root for job.json records and per-job checkpoint generations;
  /// empty disables durability (jobs restart from scratch on preemption).
  std::string state_dir;
  /// Lanes the fair-share policy divides among running jobs; 0 takes the
  /// process default (LLP_NUM_THREADS / hardware concurrency).
  int total_threads = 0;
  /// Cap on concurrently running jobs; queued jobs wait or preempt.
  int max_running = 4;
  /// Checkpoint generations kept per job.
  int keep_generations = 3;
  int backlog = 16;
};

/// Point-in-time public view of one job.
struct JobStatus {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  int steps_done = 0;
  double residual = std::numeric_limits<double>::quiet_NaN();
  int threads = 0;             ///< current lane allocation (0 = not running)
  int resumed_from_step = -1;  ///< checkpoint step this run resumed at
  int preemptions = 0;
  std::string error;

  Json to_json() const;
};

class Server {
public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recover persisted jobs from state_dir, bind the socket (when
  /// configured), and start the scheduler/accept threads. Throws
  /// llp::Error on bind failure.
  void start();

  /// Graceful stop: preempt (checkpoint) every running job, stop
  /// accepting, drain sessions, join everything. Idempotent.
  void stop();

  // ---- in-process API (the protocol handlers call these too) ----------

  /// Admit a job. Returns its id, or 0 with *error set (draining/stopped).
  std::uint64_t submit(const JobSpec& spec, std::string* error = nullptr);
  std::optional<JobStatus> status(std::uint64_t id);
  std::vector<JobStatus> list();
  /// Request cancellation. False with *error for unknown/terminal jobs;
  /// repeated cancels of a live job are idempotent.
  bool cancel(std::uint64_t id, std::string* error = nullptr);
  /// Stop admitting new jobs; already-admitted jobs keep running.
  void drain();
  bool draining();
  /// Block until the job reaches a terminal state (true) or the timeout
  /// expires (false). timeout_s < 0 waits forever.
  bool wait_terminal(std::uint64_t id, double timeout_s,
                     JobStatus* out = nullptr);
  /// Copy of the job's event lines starting at absolute index `from`
  /// (lines older than the retention window are skipped). *next receives
  /// the absolute index one past the last line returned.
  std::vector<std::string> events_since(std::uint64_t id, std::size_t from,
                                        std::size_t* next);

  /// True once a client issued the shutdown op (the daemon main loop
  /// polls this; the server does not stop itself).
  bool shutdown_requested();
  /// Wait up to timeout_s for a shutdown request; returns
  /// shutdown_requested().
  bool wait_shutdown(double timeout_s);

  const ServerConfig& config() const noexcept { return cfg_; }

private:
  struct Job {
    std::uint64_t id = 0;
    std::uint64_t seq = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    int threads = 0;
    int desired_threads = 0;  ///< scheduler-set fair share (auto jobs)
    int steps_done = 0;
    double residual = std::numeric_limits<double>::quiet_NaN();
    int resumed_from_step = -1;
    int preemptions = 0;
    std::string error;
    bool cancel_requested = false;
    bool preempt_requested = false;
    std::vector<std::string> events;
    std::size_t events_base = 0;  ///< absolute index of events.front()
    std::thread runner;
    bool runner_done = false;
  };

  struct Session {
    Socket sock;
    std::thread thread;
    bool done = false;
  };

  // Threads.
  void scheduler_loop();
  void runner_loop(Job* job);
  void accept_loop();
  void session_loop(Session* session);

  // Protocol. handle_request serves every op except the streaming
  // `events`, which writes to the fd itself.
  Json handle_request(const Json& req);
  bool handle_events(int fd, const Json& req);

  // All _locked helpers require mu_ held.
  void dispatch_locked();
  void reap_runners(std::unique_lock<std::mutex>& lock);
  void push_event_locked(Job& job, std::string line);
  void persist_job_locked(Job& job);
  JobStatus status_locked(const Job& job) const;
  Job* find_job_locked(std::uint64_t id);
  void recover_state();

  ServerConfig cfg_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  bool draining_ = false;
  bool stopping_ = false;
  bool started_ = false;
  bool shutdown_requested_ = false;

  Socket listen_sock_;
  std::thread scheduler_;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace f3d::serve
