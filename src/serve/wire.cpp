#include "serve/wire.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/io.hpp"

namespace f3d::serve {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// sockaddr_un setup shared by listen/connect. sun_path is finite; a path
// that does not fit is a configuration error, not something to truncate.
bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* err) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    if (err != nullptr) {
      *err = "socket path must be 1.." +
             std::to_string(sizeof(addr->sun_path) - 1) + " bytes: '" + path +
             "'";
    }
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket listen_unix(const std::string& path, int backlog, std::string* err) {
  sockaddr_un addr;
  if (!fill_addr(path, &addr, err)) return Socket{};
  Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    if (err != nullptr) *err = errno_string("socket");
    return Socket{};
  }
  ::unlink(path.c_str());  // stale socket from a previous (killed) daemon
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (err != nullptr) *err = errno_string(("bind " + path).c_str());
    return Socket{};
  }
  if (::listen(sock.fd(), backlog) != 0) {
    if (err != nullptr) *err = errno_string("listen");
    return Socket{};
  }
  return sock;
}

Socket connect_unix(const std::string& path, std::string* err) {
  sockaddr_un addr;
  if (!fill_addr(path, &addr, err)) return Socket{};
  Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    if (err != nullptr) *err = errno_string("socket");
    return Socket{};
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (err != nullptr) *err = errno_string(("connect " + path).c_str());
    return Socket{};
  }
  return sock;
}

Socket accept_with_timeout(int listen_fd, int timeout_ms, std::string* err) {
  if (err != nullptr) err->clear();
  pollfd pfd{listen_fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return Socket{};  // timeout: caller re-checks its stop flag
  if (rc < 0) {
    if (errno != EINTR && err != nullptr) *err = errno_string("poll");
    return Socket{};
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno != EINTR && errno != ECONNABORTED && err != nullptr) {
      *err = errno_string("accept");
    }
    return Socket{};
  }
  return Socket(fd);
}

bool write_line(int fd, std::string_view line, std::string* err) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  // send_exact loops on EINTR and short sends; a peer that disappears
  // mid-line surfaces as a typed failure either way.
  const llp::io::IoResult r =
      llp::io::send_exact(fd, framed.data(), framed.size());
  if (r.ok()) return true;
  if (err != nullptr) {
    if (r.status == llp::io::IoStatus::kEof) {
      *err = "peer disconnected mid-line (" +
             std::to_string(r.transferred) + " of " +
             std::to_string(framed.size()) + " bytes sent)";
    } else {
      errno = r.error;
      *err = errno_string("send");
    }
  }
  return false;
}

LineReader::Result LineReader::next_line(std::string* out, std::string* err) {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      if (oversize_) return Result::kOversize;
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Result::kLine;
    }
    if (buf_.size() >= kMaxLine) {
      // Stop accumulating: remember the breach and drain nothing more —
      // the protocol handler reports the error and drops the connection.
      oversize_ = true;
      return Result::kOversize;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (!buf_.empty()) {
        // EOF with a partial line buffered is a torn frame, not an orderly
        // shutdown: report it as a typed error so callers cannot mistake a
        // peer that died mid-request for one that finished.
        if (err != nullptr) {
          *err = "peer disconnected mid-line (" +
                 std::to_string(buf_.size()) + " bytes of partial line)";
        }
        return Result::kError;
      }
      return Result::kEof;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = errno_string("recv");
      return Result::kError;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace f3d::serve
