// Admission, fair-share, and preemption policy for the serve daemon —
// pure functions over plain structs, so every decision the scheduler
// thread makes is unit-testable without sockets or solver runs.
//
// Policy:
//  - Dispatch order: highest priority first, FIFO (submission sequence)
//    within a priority class. A preempted job keeps its original sequence
//    number, so it resumes ahead of later arrivals of equal priority.
//  - Thread shares: a job submitted with threads > 0 is pinned to exactly
//    that many lanes (pinning buys a reproducible residual trajectory).
//    Auto jobs (threads == 0) split what remains of the pool equally,
//    never below one lane each; leftover lanes go to the earliest auto
//    jobs. The pool may oversubscribe — a pin is a promise about lane
//    count (determinism), not about exclusive cores.
//  - Preemption: when the running set is full and a queued job outranks
//    the weakest running job, the weakest (lowest priority; youngest
//    within the tie) is told to checkpoint and yield.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace f3d::serve {

/// The scheduler-relevant projection of one job.
struct SchedJob {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  ///< admission order; preserved across preemption
  int priority = 0;       ///< 0 (lowest) .. 9
  int pinned_threads = 0; ///< 0 = auto (fair share)
};

/// Index into `queued` of the next job to dispatch: highest priority,
/// then lowest seq. nullopt when the queue is empty.
std::optional<std::size_t> pick_next(const std::vector<SchedJob>& queued);

/// Per-job thread allocation for the running set. `pinned[i]` is job i's
/// requested pin (0 = auto). Every job gets >= 1; pinned jobs get exactly
/// their pin; auto jobs split max(total - sum(pins), #auto) equally with
/// the remainder biased to earlier entries. Empty input -> empty output.
std::vector<int> fair_shares(int total_threads,
                             const std::vector<int>& pinned);

/// Index into `running` of the job to preempt for an incoming job of
/// `incoming_priority`: the lowest-priority job strictly below it
/// (youngest seq breaks ties — the job with the least sunk scheduling
/// seniority yields). nullopt when nothing is outranked.
std::optional<std::size_t> pick_victim(const std::vector<SchedJob>& running,
                                       int incoming_priority);

}  // namespace f3d::serve
