#include "serve/scheduler.hpp"

#include <algorithm>

namespace f3d::serve {

std::optional<std::size_t> pick_next(const std::vector<SchedJob>& queued) {
  if (queued.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queued.size(); ++i) {
    const SchedJob& a = queued[i];
    const SchedJob& b = queued[best];
    if (a.priority > b.priority ||
        (a.priority == b.priority && a.seq < b.seq)) {
      best = i;
    }
  }
  return best;
}

std::vector<int> fair_shares(int total_threads,
                             const std::vector<int>& pinned) {
  std::vector<int> shares(pinned.size(), 0);
  if (pinned.empty()) return shares;
  if (total_threads < 1) total_threads = 1;

  int pinned_sum = 0;
  int num_auto = 0;
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    if (pinned[i] > 0) {
      shares[i] = pinned[i];
      pinned_sum += pinned[i];
    } else {
      ++num_auto;
    }
  }
  if (num_auto == 0) return shares;

  // Auto jobs divide what the pins left over; when the pins already cover
  // the pool, each auto job still gets one lane (progress over purity —
  // the lanes oversubscribe).
  const int available = std::max(total_threads - pinned_sum, num_auto);
  const int base = available / num_auto;
  int extra = available % num_auto;
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    if (pinned[i] > 0) continue;
    shares[i] = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
  }
  return shares;
}

std::optional<std::size_t> pick_victim(const std::vector<SchedJob>& running,
                                       int incoming_priority) {
  std::optional<std::size_t> victim;
  for (std::size_t i = 0; i < running.size(); ++i) {
    if (running[i].priority >= incoming_priority) continue;
    if (!victim.has_value()) {
      victim = i;
      continue;
    }
    const SchedJob& a = running[i];
    const SchedJob& b = running[*victim];
    if (a.priority < b.priority ||
        (a.priority == b.priority && a.seq > b.seq)) {
      victim = i;
    }
  }
  return victim;
}

}  // namespace f3d::serve
