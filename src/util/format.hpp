// Minimal printf-style string formatting (GCC 12 lacks std::format).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace llp {

/// snprintf into a std::string. Format string must be a literal in callers.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

/// Format a count with thousands separators, e.g. 12800000 -> "12,800,000".
/// The paper's tables print cycle counts this way.
inline std::string with_commas(long long v) {
  std::string s = std::to_string(v < 0 ? -v : v);
  std::string out;
  int digits = 0;
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (digits != 0 && digits % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++digits;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace llp
