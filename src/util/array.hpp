// Fortran-ordered dense arrays.
//
// The paper's code (F3D) is Fortran: A(J,K,L) stores J fastest. All of the
// loop-ordering, buffer-sizing, and page-contention discussion in the paper
// (Examples 1–4) assumes that layout, so we reproduce it exactly:
//
//   linear(j,k,l) = j + jmax * (k + kmax * l)
//
// Array4D adds a leading component index n (e.g. the 5 conservative flow
// variables), also fastest-varying: Q(n,j,k,l).
#pragma once

#include <cstddef>
#include <utility>

#include "util/aligned.hpp"
#include "util/error.hpp"

namespace llp {

/// Dense 3-D array, Fortran (column-major) order: first index fastest.
template <typename T>
class Array3D {
public:
  Array3D() = default;

  Array3D(int jmax, int kmax, int lmax, T init = T{})
      : jmax_(jmax), kmax_(kmax), lmax_(lmax),
        data_(checked_size(jmax, kmax, lmax), init) {}

  int jmax() const noexcept { return jmax_; }
  int kmax() const noexcept { return kmax_; }
  int lmax() const noexcept { return lmax_; }
  std::size_t size() const noexcept { return data_.size(); }

  /// Linear offset of (j,k,l); exposed so memory-system simulators can map
  /// logical indices to addresses.
  std::size_t index(int j, int k, int l) const noexcept {
    return static_cast<std::size_t>(j) +
           static_cast<std::size_t>(jmax_) *
               (static_cast<std::size_t>(k) + static_cast<std::size_t>(kmax_) * l);
  }

  T& operator()(int j, int k, int l) noexcept {
    LLP_ASSERT(in_bounds(j, k, l));
    return data_[index(j, k, l)];
  }
  const T& operator()(int j, int k, int l) const noexcept {
    LLP_ASSERT(in_bounds(j, k, l));
    return data_[index(j, k, l)];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T v) { data_.assign(data_.size(), v); }

  bool in_bounds(int j, int k, int l) const noexcept {
    return j >= 0 && j < jmax_ && k >= 0 && k < kmax_ && l >= 0 && l < lmax_;
  }

private:
  static std::size_t checked_size(int jmax, int kmax, int lmax) {
    LLP_REQUIRE(jmax > 0 && kmax > 0 && lmax > 0,
                "Array3D dims must be positive");
    return static_cast<std::size_t>(jmax) * kmax * lmax;
  }

  int jmax_ = 0, kmax_ = 0, lmax_ = 0;
  AlignedVector<T> data_;
};

/// Dense 4-D array with a leading component index: Q(n,j,k,l), n fastest.
/// This is the "reordered array indices" layout the paper's serial tuning
/// produced — all components of one grid point are contiguous, maximizing
/// work per cache miss for point-local computations.
template <typename T>
class Array4D {
public:
  Array4D() = default;

  Array4D(int nvar, int jmax, int kmax, int lmax, T init = T{})
      : nvar_(nvar), jmax_(jmax), kmax_(kmax), lmax_(lmax),
        data_(checked_size(nvar, jmax, kmax, lmax), init) {}

  int nvar() const noexcept { return nvar_; }
  int jmax() const noexcept { return jmax_; }
  int kmax() const noexcept { return kmax_; }
  int lmax() const noexcept { return lmax_; }
  std::size_t size() const noexcept { return data_.size(); }

  std::size_t index(int n, int j, int k, int l) const noexcept {
    return static_cast<std::size_t>(n) +
           static_cast<std::size_t>(nvar_) *
               (static_cast<std::size_t>(j) +
                static_cast<std::size_t>(jmax_) *
                    (static_cast<std::size_t>(k) +
                     static_cast<std::size_t>(kmax_) * l));
  }

  T& operator()(int n, int j, int k, int l) noexcept {
    LLP_ASSERT(in_bounds(n, j, k, l));
    return data_[index(n, j, k, l)];
  }
  const T& operator()(int n, int j, int k, int l) const noexcept {
    LLP_ASSERT(in_bounds(n, j, k, l));
    return data_[index(n, j, k, l)];
  }

  /// Pointer to the nvar-vector at grid point (j,k,l).
  T* point(int j, int k, int l) noexcept { return &data_[index(0, j, k, l)]; }
  const T* point(int j, int k, int l) const noexcept {
    return &data_[index(0, j, k, l)];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T v) { data_.assign(data_.size(), v); }

  bool in_bounds(int n, int j, int k, int l) const noexcept {
    return n >= 0 && n < nvar_ && j >= 0 && j < jmax_ && k >= 0 && k < kmax_ &&
           l >= 0 && l < lmax_;
  }

private:
  static std::size_t checked_size(int nvar, int jmax, int kmax, int lmax) {
    LLP_REQUIRE(nvar > 0 && jmax > 0 && kmax > 0 && lmax > 0,
                "Array4D dims must be positive");
    return static_cast<std::size_t>(nvar) * jmax * kmax * lmax;
  }

  int nvar_ = 0, jmax_ = 0, kmax_ = 0, lmax_ = 0;
  AlignedVector<T> data_;
};

}  // namespace llp
