// EINTR-safe exact-transfer I/O helpers shared by every wire and durable
// writer in the repo (serve line protocol, cluster frames, checkpoint
// files).
//
// POSIX read/write may transfer fewer bytes than asked and may fail with
// EINTR when a signal lands mid-call — both are routine for a process that
// installs SIGCHLD handlers or runs under a debugger, and both corrupt a
// framed protocol if the caller assumes full transfers. These helpers loop
// until the full count is transferred, retrying EINTR, and report exactly
// one of three outcomes: everything transferred, the peer ended the stream
// (with how many bytes made it), or a hard errno.
#pragma once

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>

namespace llp::io {

enum class IoStatus {
  kOk,     ///< all n bytes transferred
  kEof,    ///< stream ended before n bytes (transferred tells where)
  kError,  ///< errno-style failure (error holds it)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t transferred = 0;  ///< bytes moved before the outcome
  int error = 0;                ///< errno when status == kError

  bool ok() const noexcept { return status == IoStatus::kOk; }
  /// True when the stream ended cleanly at a boundary: EOF with nothing
  /// transferred. EOF after a partial transfer is a torn frame.
  bool clean_eof() const noexcept {
    return status == IoStatus::kEof && transferred == 0;
  }
};

/// Read exactly n bytes from fd, looping on EINTR and short reads.
inline IoResult read_exact(int fd, void* buf, std::size_t n) {
  IoResult r;
  char* p = static_cast<char*>(buf);
  while (r.transferred < n) {
    const ssize_t got = ::read(fd, p + r.transferred, n - r.transferred);
    if (got > 0) {
      r.transferred += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      r.status = IoStatus::kEof;
      return r;
    }
    if (errno == EINTR) continue;
    r.status = IoStatus::kError;
    r.error = errno;
    return r;
  }
  return r;
}

/// Write exactly n bytes to fd (plain write(2) — files, pipes), looping on
/// EINTR and short writes.
inline IoResult write_exact(int fd, const void* buf, std::size_t n) {
  IoResult r;
  const char* p = static_cast<const char*>(buf);
  while (r.transferred < n) {
    const ssize_t put = ::write(fd, p + r.transferred, n - r.transferred);
    if (put > 0) {
      r.transferred += static_cast<std::size_t>(put);
      continue;
    }
    if (put == 0) continue;  // defensive: write never legitimately sticks at 0
    if (errno == EINTR) continue;
    r.status = IoStatus::kError;
    r.error = errno;
    return r;
  }
  return r;
}

/// Write exactly n bytes to a socket via send(2) with SIGPIPE suppressed —
/// a dead peer surfaces as EPIPE/ECONNRESET in the result instead of a
/// signal. EPIPE is reported as kEof (the peer is gone, not the syscall
/// broken) with the partial count preserved.
inline IoResult send_exact(int fd, const void* buf, std::size_t n) {
  IoResult r;
  const char* p = static_cast<const char*>(buf);
  while (r.transferred < n) {
    const ssize_t put =
        ::send(fd, p + r.transferred, n - r.transferred, MSG_NOSIGNAL);
    if (put > 0) {
      r.transferred += static_cast<std::size_t>(put);
      continue;
    }
    if (put == 0) continue;
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      r.status = IoStatus::kEof;
      r.error = errno;
      return r;
    }
    r.status = IoStatus::kError;
    r.error = errno;
    return r;
  }
  return r;
}

}  // namespace llp::io
