// Deterministic RNG for tests and workload generators (SplitMix64).
//
// Benchmarks and property tests must be reproducible run-to-run, so nothing
// in the library uses std::random_device.
#pragma once

#include <cstdint>

namespace llp {

class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0,1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo,hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0,n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

private:
  std::uint64_t state_;
};

}  // namespace llp
