#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace llp {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return s;
}

double rel_diff(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale == 0.0) return 0.0;
  return std::abs(a - b) / scale;
}

double geometric_mean(std::span<const double> xs) {
  LLP_REQUIRE(!xs.empty(), "geometric_mean of empty sample");
  double logsum = 0.0;
  for (double x : xs) {
    LLP_REQUIRE(x > 0.0, "geometric_mean requires positive inputs");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  LLP_REQUIRE(x.size() == y.size() && x.size() >= 2,
              "loglog_slope needs >= 2 matching points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    LLP_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "loglog_slope requires positive data");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace llp
