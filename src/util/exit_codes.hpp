// The exit-code contract shared by the CLI drivers (f3d_run, f3d_fuzz).
//
// Tools classify their outcome through these codes so harnesses — the
// scenario fuzzer, the CI jobs, shell test matrices — can bucket a run
// without scraping stderr:
//
//   0   success
//   1   run failure: recovery budget exhausted, or the dynamic analyzer
//       reported findings (the run completed but is not trustworthy)
//   2   usage error: bad flags or out-of-range argument values
//   3   validation failure: the case itself was rejected
//       (llp::ValidationError — degenerate dims, non-finite CFL, ...)
//   4   divergence: the run finished with a non-finite residual or
//       solution (and no recovery budget absorbed it)
//   5   I/O error: unreadable input, failed write, no intact checkpoint
//       generation under --restart (llp::IoError)
//   6   cluster failure: the coordinator exhausted its restart budget, or
//       every worker slot exceeded its respawn budget with no survivor to
//       migrate onto (llp::ClusterError, f3d_cluster only)
//   42  simulated crash: an injected iocrash died mid-write via _Exit,
//       like the process death it models (llp::CrashError)
//
// 42 is load-bearing: the kill-and-resume tests and the crash-recovery CI
// matrix assert it, so it must never be renumbered.
#pragma once

namespace llp {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRunFailure = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitValidation = 3;
inline constexpr int kExitDivergence = 4;
inline constexpr int kExitIo = 5;
inline constexpr int kExitCluster = 6;
inline constexpr int kExitCrashSim = 42;

/// Stable short name for a contract code ("ok", "usage", ...); "unknown"
/// for anything outside the contract (signals, 127, ...).
inline const char* exit_code_name(int code) {
  switch (code) {
    case kExitOk: return "ok";
    case kExitRunFailure: return "run-failure";
    case kExitUsage: return "usage";
    case kExitValidation: return "validation";
    case kExitDivergence: return "divergence";
    case kExitIo: return "io";
    case kExitCluster: return "cluster";
    case kExitCrashSim: return "crash-sim";
    default: return "unknown";
  }
}

}  // namespace llp
