#include "util/crc32c.hpp"

namespace llp {

namespace {

struct Tables {
  std::uint32_t t[8][256];
  Tables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? kPoly : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tbl;
  return tbl;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const Tables& tbl = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  // Byte-at-a-time up to 8-byte alignment, then slicing-by-8.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = tbl.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --len;
  }
  while (len >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               static_cast<std::uint32_t>(p[1]) << 8 |
               static_cast<std::uint32_t>(p[2]) << 16 |
               static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    crc = tbl.t[7][lo & 0xFFu] ^ tbl.t[6][(lo >> 8) & 0xFFu] ^
          tbl.t[5][(lo >> 16) & 0xFFu] ^ tbl.t[4][lo >> 24] ^
          tbl.t[3][hi & 0xFFu] ^ tbl.t[2][(hi >> 8) & 0xFFu] ^
          tbl.t[1][(hi >> 16) & 0xFFu] ^ tbl.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = tbl.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --len;
  }
  return ~crc;
}

}  // namespace llp
