#include "util/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace llp {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != ',' && c != '-' && c != '+' && c != 'e' &&
               c != 'E' && c != 'x' && c != '%' && c != '/') {
      return false;
    }
  }
  return digit;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LLP_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  LLP_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_cell = [&](std::string& out, const std::string& cell, std::size_t c,
                       bool right) {
    const std::size_t pad = width[c] - cell.size();
    if (right) out.append(pad, ' ');
    out += cell;
    if (!right) out.append(pad, ' ');
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    emit_cell(out, headers_[c], c, false);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      emit_cell(out, row[c], c, looks_numeric(row[c]));
    }
    out += '\n';
  }
  return out;
}

}  // namespace llp
