// Small statistics helpers used by the perf harness and tests.
#pragma once

#include <cstddef>
#include <span>

namespace llp {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  std::size_t count = 0;
};

/// Summarize a sample; returns a zeroed Summary for an empty span.
Summary summarize(std::span<const double> xs);

/// |a-b| relative to max(|a|,|b|), 0 if both are 0. Used by solver-variant
/// equivalence tests ("no changes to the algorithm").
double rel_diff(double a, double b);

/// Geometric mean; requires all-positive inputs (throws llp::Error otherwise).
double geometric_mean(std::span<const double> xs);

/// Least-squares slope of log(y) vs log(x) — observed order of accuracy for
/// grid-convergence property tests.
double loglog_slope(std::span<const double> x, std::span<const double> y);

}  // namespace llp
