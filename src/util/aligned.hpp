// Cache-line-aligned allocation.
//
// HPC arrays want their base address aligned to a cache line (64 B) so that
// (a) vector loads are aligned and (b) two arrays never share a line at their
// boundaries, which matters for the false-sharing experiments in simsmp.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace llp {

inline constexpr std::size_t kCacheLineBytes = 64;

/// STL-compatible allocator returning kCacheLineBytes-aligned storage.
template <typename T>
class AlignedAllocator {
public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    const std::size_t bytes =
        ((n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) * kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector with cache-line-aligned storage; the workhorse container for grids.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace llp
