// Error handling for the LLP library.
//
// The library reports precondition violations by throwing llp::Error.
// LLP_REQUIRE is used at public API boundaries; internal invariants use
// LLP_ASSERT, which compiles to nothing in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace llp {

/// Exception type thrown by all LLP components on precondition violation.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace llp

/// Precondition check that is always active (public API boundaries).
#define LLP_REQUIRE(expr, msg)                                   \
  do {                                                           \
    if (!(expr)) ::llp::detail::fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define LLP_ASSERT(expr) ((void)0)
#else
#define LLP_ASSERT(expr)                                        \
  do {                                                          \
    if (!(expr)) ::llp::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)
#endif
