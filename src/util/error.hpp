// Error handling for the LLP library.
//
// The library reports precondition violations by throwing llp::Error.
// LLP_REQUIRE is used at public API boundaries; internal invariants use
// LLP_ASSERT, which compiles to nothing in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace llp {

/// Exception type thrown by all LLP components on precondition violation.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A rejected problem description: degenerate grid dimensions (smaller
/// than the dissipation stencil), extents whose storage size would
/// overflow, non-finite CFL or spacing, malformed scenario specs. Distinct
/// from plain Error so drivers can map "your case is bad" to a dedicated
/// exit code (util/exit_codes.hpp) instead of conflating it with internal
/// precondition failures.
class ValidationError : public Error {
public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// Thrown by the ThreadPool watchdog when a lane fails to reach the join
/// within the configured deadline: a hang becomes a structured error on the
/// calling thread instead of a silent deadlock.
class TimeoutError : public Error {
public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// An I/O-shaped failure: malformed or truncated input, a corrupt
/// checkpoint with no intact fallback generation, a failed or out-of-space
/// write. Loaders throw these instead of constructing garbage state, so a
/// caller can distinguish "the file is bad" from "the call was wrong".
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Simulated process death, thrown by the checkpoint writer when an
/// `iocrash` fault fires mid-write. Deliberately NOT an IoError: recovery
/// layers that absorb I/O failures must let this one propagate, so a crash
/// is a crash even in-process. Tools translate it into an abrupt _exit.
class CrashError : public Error {
public:
  explicit CrashError(const std::string& what) : Error(what) {}
};

/// A cluster-run failure the coordinator could not absorb: the restart
/// budget is exhausted, every worker slot exceeded its respawn budget, or
/// no intact checkpoint generation exists to roll back to. Distinct from
/// IoError/TimeoutError (which describe one operation) — this one means the
/// supervised run as a whole is over, and drivers map it to a dedicated
/// exit code (util/exit_codes.hpp).
class ClusterError : public Error {
public:
  explicit ClusterError(const std::string& what) : Error(what) {}
};

/// An error attributed to one lane of one parallel region. The fault
/// injector throws these so recovery layers (the solver's retry loop) can
/// attribute a failure to the region that produced it without depending on
/// the fault subsystem.
class LaneError : public Error {
public:
  LaneError(const std::string& what, std::size_t region, int lane)
      : Error(what), region_(region), lane_(lane) {}
  std::size_t region() const noexcept { return region_; }
  int lane() const noexcept { return lane_; }

private:
  std::size_t region_;
  int lane_;
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace llp

/// Precondition check that is always active (public API boundaries).
#define LLP_REQUIRE(expr, msg)                                   \
  do {                                                           \
    if (!(expr)) ::llp::detail::fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define LLP_ASSERT(expr) ((void)0)
#else
#define LLP_ASSERT(expr)                                        \
  do {                                                          \
    if (!(expr)) ::llp::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)
#endif
