// Consolidated environment-variable parsing for the whole runtime.
//
// Every LLP knob reachable from the environment goes through these typed
// getters instead of scattered std::getenv/atoi calls, so the parsing
// rules are uniform and documented once:
//
//   * precedence: an explicit API call (set_num_threads, set_tuner,
//     f3d_run flags) ALWAYS wins over an environment variable, which wins
//     over the built-in default. Env vars are read once, at the first
//     construction of the subsystem that owns them — they configure
//     startup, they are not live knobs.
//   * malformed values fall back to the caller's default rather than
//     aborting: an env var is operator input, and "LLP_NUM_THREADS=banana"
//     should behave like an unset variable, not crash a production run.
//   * range clamping is explicit: get_int/get_double take [lo, hi] and
//     return the fallback for out-of-range values, so a parsed-but-absurd
//     setting cannot propagate.
//
// The variables in use:
//
//   LLP_NUM_THREADS    lane count                  (Runtime)
//   LLP_TUNE           enable autotuning, =1       (Runtime, llp::tune)
//   LLP_TUNE_DB        tuning-DB path              (llp::tune)
//   LLP_WATCHDOG_MS    pool watchdog deadline      (Runtime)
//   LLP_FAULT          fault-plan spec             (llp::fault)
//   LLP_TRACE          trace output path           (llp::obs)
//   LLP_TRACE_BUFFER   per-thread ring capacity    (llp::obs)
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace llp::env {

/// The raw value, or nullopt when unset. Empty values count as set (some
/// shells export empties); flag semantics live in get_flag.
inline std::optional<std::string> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

/// String-valued variable; unset or empty returns `fallback`.
inline std::string get_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? std::string(v) : fallback;
}

/// Boolean switch: set, non-empty, and not starting with '0' ("1", "yes",
/// "true" all enable; "0" and "" disable — matches the historical LLP_TUNE
/// parsing).
inline bool get_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Integer variable: the whole token must parse and land in [lo, hi],
/// otherwise `fallback` is returned.
inline long get_int(const char* name, long fallback, long lo, long hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  if (parsed < lo || parsed > hi) return fallback;
  return parsed;
}

/// Floating-point variable with the same whole-token + range rule.
inline double get_double(const char* name, double fallback, double lo,
                         double hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  if (!(parsed >= lo && parsed <= hi)) return fallback;  // rejects NaN too
  return parsed;
}

}  // namespace llp::env
