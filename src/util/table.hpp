// Plain-text table formatter for the benchmark harness.
//
// Every bench binary reproduces one of the paper's tables or figures as text;
// Table gives them a common look: padded columns, a header rule, and optional
// right alignment for numeric columns.
#pragma once

#include <string>
#include <vector>

namespace llp {

class Table {
public:
  /// Column headers define the column count; all rows must match it.
  explicit Table(std::vector<std::string> headers);

  /// Append one row (throws llp::Error if the cell count mismatches).
  void add_row(std::vector<std::string> cells);

  /// Render the table; every column is padded to its widest cell.
  /// Numeric-looking cells are right-aligned, text cells left-aligned.
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace llp
