// CRC32C (Castagnoli, reflected polynomial 0x82F63B78).
//
// The checkpoint subsystem frames every header and zone payload with a
// CRC32C so a torn or bit-flipped write is detected on load rather than
// silently reconstructed into solver state. Software slicing-by-8
// implementation — no SSE4.2 dependency — fast enough that checksumming is
// a small fraction of the 40 MB/s-scale checkpoint writes it protects.
#pragma once

#include <cstddef>
#include <cstdint>

namespace llp {

/// CRC32C of `len` bytes starting at `data`, continuing from `seed`
/// (pass the previous return value to checksum a buffer in pieces).
/// crc32c(nullptr, 0) == 0; crc32c("123456789", 9) == 0xE3069283.
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

}  // namespace llp
