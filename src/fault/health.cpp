#include "fault/health.hpp"

#include "core/runtime.hpp"
#include "util/format.hpp"

namespace llp::fault {

void HealthMonitor::note_fault(RegionId region, FaultKind kind) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_faults_;
    ++by_kind_[static_cast<int>(kind)];
  }
  if (region != kNoRegion) llp::regions().record_fault(region);
}

void HealthMonitor::note_recovery(RegionId region) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_recoveries_;
  }
  if (region != kNoRegion) llp::regions().record_recovery(region);
}

std::uint64_t HealthMonitor::total_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_faults_;
}

std::uint64_t HealthMonitor::total_recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recoveries_;
}

std::uint64_t HealthMonitor::faults(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_kind_[static_cast<int>(kind)];
}

std::string HealthMonitor::report() const {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = strfmt(
        "health: %llu faults (throw=%llu nan=%llu delay=%llu hang=%llu "
        "ioshort=%llu ioflip=%llu ioenospc=%llu iocrash=%llu), "
        "%llu recoveries\n",
        static_cast<unsigned long long>(total_faults_),
        static_cast<unsigned long long>(by_kind_[0]),
        static_cast<unsigned long long>(by_kind_[1]),
        static_cast<unsigned long long>(by_kind_[2]),
        static_cast<unsigned long long>(by_kind_[3]),
        static_cast<unsigned long long>(by_kind_[4]),
        static_cast<unsigned long long>(by_kind_[5]),
        static_cast<unsigned long long>(by_kind_[6]),
        static_cast<unsigned long long>(by_kind_[7]),
        static_cast<unsigned long long>(total_recoveries_));
  }
  for (const auto& r : llp::regions().snapshot()) {
    if (r.faults == 0 && r.recoveries == 0) continue;
    out += strfmt("  %-32s faults=%llu recoveries=%llu\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.faults),
                  static_cast<unsigned long long>(r.recoveries));
  }
  return out;
}

}  // namespace llp::fault
