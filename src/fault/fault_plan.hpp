// FaultPlan: a deterministic description of which faults to inject where.
//
// The plan is keyed on (region name x invocation index x lane) so a fault
// fires at exactly the same point of the execution timeline on every run —
// that determinism is what makes recovery demonstrable: two runs with the
// same plan and seed produce bit-identical final solutions, and a run can
// be diffed against a fault-free run with first_divergence.
//
// Spec grammar (LLP_FAULT environment variable or --fault flag):
//
//   plan    := entry (';' entry)*
//   entry   := fault | 'seed=' uint
//   fault   := kind ':' region ':' inv ':' lane (':' key '=' value)*
//   kind    := 'throw' | 'nan' | 'delay' | 'hang'
//   region  := region name as registered (e.g. run.z0.rhs)
//   inv     := uint | '*'        0-based invocation index of the region
//   lane    := int  | '*'        lane index within the parallel run
//   key     := 'delay' (ms, kind=delay) | 'array' (name, kind=nan)
//            | 'count' (max times the entry fires; default 1, 0=unlimited)
//            | 'p' (probability in [0,1]; default 1, seeded-RNG driven)
//
// Examples:
//   LLP_FAULT="throw:run.z0.rhs:3:1"
//   LLP_FAULT="nan:run.z0.rhs:6:0:array=q0"
//   LLP_FAULT="delay:run.z0.sweep_j:*:2:delay=20:count=5"
//   LLP_FAULT="hang:run.z0.update:2:1;seed=42"
//
// Probabilistic entries (p<1) draw from a SplitMix64 stream keyed by
// (seed, region, invocation, lane), so they too are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llp::fault {

enum class FaultKind {
  kThrow,  ///< throw llp::LaneError from the lane
  kNan,    ///< poison a registered array with a quiet NaN
  kDelay,  ///< sleep the lane (straggler)
  kHang,   ///< never return (the watchdog's job to detect); leaks the lane
};

const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  std::string region;            ///< exact region name
  std::uint64_t invocation = 0;  ///< 0-based; ignored when any_invocation
  bool any_invocation = false;   ///< '*'
  int lane = 0;                  ///< ignored when any_lane
  bool any_lane = false;         ///< '*'
  double delay_ms = 10.0;        ///< kDelay only
  std::string array;             ///< kNan: registered array; empty = all
  int count = 1;                 ///< max firings; <= 0 = unlimited
  double probability = 1.0;      ///< per-match firing probability

  /// Does this spec match the given injection point (ignoring count and
  /// probability, which are dynamic)?
  bool matches(std::string_view region_name, std::uint64_t inv,
               int lane_index) const {
    return region == region_name &&
           (any_invocation || invocation == inv) &&
           (any_lane || lane == lane_index);
  }

  std::string to_string() const;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0x5eedfa017ULL;  ///< drives probabilistic entries

  /// Parse the spec grammar above; throws llp::Error on malformed input.
  static FaultPlan parse(std::string_view text);

  /// Render back to the spec grammar (parse(to_string()) round-trips).
  std::string to_string() const;

  bool empty() const { return specs.empty(); }
};

}  // namespace llp::fault
