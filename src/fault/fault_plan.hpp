// FaultPlan: a deterministic description of which faults to inject where.
//
// The plan is keyed on (region name x invocation index x lane) so a fault
// fires at exactly the same point of the execution timeline on every run —
// that determinism is what makes recovery demonstrable: two runs with the
// same plan and seed produce bit-identical final solutions, and a run can
// be diffed against a fault-free run with first_divergence.
//
// Spec grammar (LLP_FAULT environment variable or --fault flag):
//
//   plan    := entry (';' entry)*
//   entry   := fault | 'seed=' uint
//   fault   := kind ':' region ':' inv ':' lane (':' key '=' value)*
//   kind    := 'throw' | 'nan' | 'delay' | 'hang'
//            | 'ioshort' | 'ioflip' | 'ioenospc' | 'iocrash'
//   region  := region name as registered (e.g. run.z0.rhs), or for the
//              io* kinds the writer's stream name (checkpoints: "ckpt")
//   inv     := uint | '*'        0-based invocation index of the region
//              (io* kinds: 0-based write-operation index on the stream)
//   lane    := int  | '*'        lane index within the parallel run
//              (io* kinds: 0-based frame index within the file; frame 0 is
//              the header, 1..Z the zone payloads)
//   key     := 'delay' (ms, kind=delay) | 'array' (name, kind=nan)
//            | 'bit' (payload bit to flip, kind=ioflip; default seeded)
//            | 'count' (max times the entry fires; default 1, 0=unlimited)
//            | 'p' (probability in [0,1]; default 1, seeded-RNG driven)
//
// Examples:
//   LLP_FAULT="throw:run.z0.rhs:3:1"
//   LLP_FAULT="nan:run.z0.rhs:6:0:array=q0"
//   LLP_FAULT="delay:run.z0.sweep_j:*:2:delay=20:count=5"
//   LLP_FAULT="hang:run.z0.update:2:1;seed=42"
//   LLP_FAULT="ioflip:ckpt:1:0:bit=12"     (flip header bit of 2nd write)
//   LLP_FAULT="iocrash:ckpt:2:1"           (die mid-payload of 3rd write)
//
// Probabilistic entries (p<1) draw from a SplitMix64 stream keyed by
// (seed, region, invocation, lane), so they too are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llp::fault {

enum class FaultKind {
  kThrow,    ///< throw llp::LaneError from the lane
  kNan,      ///< poison a registered array with a quiet NaN
  kDelay,    ///< sleep the lane (straggler)
  kHang,     ///< never return (the watchdog's job to detect); leaks the lane
  kIoShort,  ///< torn write: the stream ends mid-frame but still lands
  kIoFlip,   ///< flip one bit of a frame payload after its CRC was taken
  kIoEnospc, ///< the write fails cleanly (ENOSPC), nothing lands
  kIoCrash,  ///< process death mid-write: partial temp file, llp::CrashError
};

/// Number of FaultKind values (sizes the per-kind counters).
inline constexpr int kNumFaultKinds = 8;

const char* to_string(FaultKind kind);

/// True for the io* kinds, which key on (stream, write-op, frame) through
/// the checkpoint writer's seam rather than (region, invocation, lane)
/// through the parallel-loop hook.
bool is_io_kind(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  std::string region;            ///< exact region name
  std::uint64_t invocation = 0;  ///< 0-based; ignored when any_invocation
  bool any_invocation = false;   ///< '*'
  int lane = 0;                  ///< ignored when any_lane
  bool any_lane = false;         ///< '*'
  double delay_ms = 10.0;        ///< kDelay only
  std::string array;             ///< kNan: registered array; empty = all
  std::int64_t bit = -1;         ///< kIoFlip: payload bit; -1 = seeded
  int count = 1;                 ///< max firings; <= 0 = unlimited
  double probability = 1.0;      ///< per-match firing probability

  /// Does this spec match the given injection point (ignoring count and
  /// probability, which are dynamic)?
  bool matches(std::string_view region_name, std::uint64_t inv,
               int lane_index) const {
    return region == region_name &&
           (any_invocation || invocation == inv) &&
           (any_lane || lane == lane_index);
  }

  std::string to_string() const;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0x5eedfa017ULL;  ///< drives probabilistic entries

  /// Parse the spec grammar above; throws llp::Error on malformed input.
  static FaultPlan parse(std::string_view text);

  /// Render back to the spec grammar (parse(to_string()) round-trips).
  std::string to_string() const;

  bool empty() const { return specs.empty(); }
};

}  // namespace llp::fault
