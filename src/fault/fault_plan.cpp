#include "fault/fault_plan.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::fault {

namespace {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
  LLP_REQUIRE(!s.empty(), std::string("empty ") + what + " in fault spec");
  char* end = nullptr;
  const std::string tmp(s);
  const unsigned long long v = std::strtoull(tmp.c_str(), &end, 10);
  LLP_REQUIRE(end != nullptr && *end == '\0',
              std::string("bad ") + what + " in fault spec: " + tmp);
  return static_cast<std::uint64_t>(v);
}

double parse_double(std::string_view s, const char* what) {
  LLP_REQUIRE(!s.empty(), std::string("empty ") + what + " in fault spec");
  char* end = nullptr;
  const std::string tmp(s);
  const double v = std::strtod(tmp.c_str(), &end);
  LLP_REQUIRE(end != nullptr && *end == '\0',
              std::string("bad ") + what + " in fault spec: " + tmp);
  return v;
}

FaultKind parse_kind(std::string_view s) {
  if (s == "throw") return FaultKind::kThrow;
  if (s == "nan") return FaultKind::kNan;
  if (s == "delay") return FaultKind::kDelay;
  if (s == "hang") return FaultKind::kHang;
  if (s == "ioshort") return FaultKind::kIoShort;
  if (s == "ioflip") return FaultKind::kIoFlip;
  if (s == "ioenospc") return FaultKind::kIoEnospc;
  if (s == "iocrash") return FaultKind::kIoCrash;
  throw Error("unknown fault kind: " + std::string(s) +
              " (want throw|nan|delay|hang|ioshort|ioflip|ioenospc|iocrash)");
}

FaultSpec parse_entry(std::string_view entry) {
  const auto fields = split(entry, ':');
  LLP_REQUIRE(fields.size() >= 4,
              "fault entry needs kind:region:inv:lane — got: " +
                  std::string(entry));
  FaultSpec spec;
  spec.kind = parse_kind(trim(fields[0]));
  spec.region = std::string(trim(fields[1]));
  LLP_REQUIRE(!spec.region.empty(), "empty region in fault spec");

  const std::string_view inv = trim(fields[2]);
  if (inv == "*") {
    spec.any_invocation = true;
  } else {
    spec.invocation = parse_u64(inv, "invocation");
  }
  const std::string_view lane = trim(fields[3]);
  if (lane == "*") {
    spec.any_lane = true;
  } else {
    spec.lane = static_cast<int>(parse_u64(lane, "lane"));
  }

  for (std::size_t i = 4; i < fields.size(); ++i) {
    const auto kv = split(trim(fields[i]), '=');
    LLP_REQUIRE(kv.size() == 2, "fault option must be key=value, got: " +
                                    std::string(fields[i]));
    const std::string_view key = trim(kv[0]);
    const std::string_view value = trim(kv[1]);
    if (key == "delay") {
      spec.delay_ms = parse_double(value, "delay");
      LLP_REQUIRE(spec.delay_ms >= 0.0, "delay must be >= 0");
    } else if (key == "array") {
      spec.array = std::string(value);
    } else if (key == "bit") {
      spec.bit = static_cast<std::int64_t>(parse_u64(value, "bit"));
    } else if (key == "count") {
      spec.count = static_cast<int>(parse_u64(value, "count"));
    } else if (key == "p") {
      spec.probability = parse_double(value, "p");
      LLP_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                  "p must be in [0,1]");
    } else {
      throw Error("unknown fault option: " + std::string(key));
    }
  }
  return spec;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kNan: return "nan";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kHang: return "hang";
    case FaultKind::kIoShort: return "ioshort";
    case FaultKind::kIoFlip: return "ioflip";
    case FaultKind::kIoEnospc: return "ioenospc";
    case FaultKind::kIoCrash: return "iocrash";
  }
  return "?";
}

bool is_io_kind(FaultKind kind) {
  return kind == FaultKind::kIoShort || kind == FaultKind::kIoFlip ||
         kind == FaultKind::kIoEnospc || kind == FaultKind::kIoCrash;
}

std::string FaultSpec::to_string() const {
  std::string out = std::string(fault::to_string(kind)) + ":" + region + ":";
  out += any_invocation ? "*" : strfmt("%llu",
                                       static_cast<unsigned long long>(
                                           invocation));
  out += ":";
  out += any_lane ? "*" : strfmt("%d", lane);
  if (kind == FaultKind::kDelay) out += strfmt(":delay=%g", delay_ms);
  if (kind == FaultKind::kNan && !array.empty()) out += ":array=" + array;
  if (kind == FaultKind::kIoFlip && bit >= 0) {
    out += strfmt(":bit=%lld", static_cast<long long>(bit));
  }
  if (count != 1) out += strfmt(":count=%d", count);
  if (probability != 1.0) out += strfmt(":p=%g", probability);
  return out;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  for (std::string_view entry : split(text, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    if (entry.substr(0, 5) == "seed=") {
      plan.seed = parse_u64(trim(entry.substr(5)), "seed");
      continue;
    }
    plan.specs.push_back(parse_entry(entry));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultSpec& s : specs) {
    if (!out.empty()) out += ";";
    out += s.to_string();
  }
  if (seed != FaultPlan{}.seed) {
    if (!out.empty()) out += ";";
    out += strfmt("seed=%llu", static_cast<unsigned long long>(seed));
  }
  return out;
}

}  // namespace llp::fault
