// HealthMonitor: process-level fault/recovery accounting.
//
// The injector (and any real fault detector) notes faults here as they
// fire; recovery layers (the solver's rollback loop) note recoveries. Known
// regions are mirrored into the region registry's per-region fault/recovery
// counters, so the same registry that carries the flat profile also answers
// "which loop keeps failing?" — the health analogue of "which loop is
// slow?".
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "core/region.hpp"
#include "fault/fault_plan.hpp"

namespace llp::fault {

class HealthMonitor {
public:
  /// A fault observed in `region` (kNoRegion when unattributable, e.g. a
  /// NaN found by a downstream health check). Mirrors into the registry.
  void note_fault(RegionId region, FaultKind kind);

  /// A successful recovery (rollback + retry) attributed to `region`, or
  /// kNoRegion when the faulting region is unknown.
  void note_recovery(RegionId region);

  std::uint64_t total_faults() const;
  std::uint64_t total_recoveries() const;
  std::uint64_t faults(FaultKind kind) const;

  /// Human-readable summary: global counters plus one line per region with
  /// nonzero fault/recovery counts (from the registry snapshot).
  std::string report() const;

private:
  mutable std::mutex mu_;
  std::uint64_t total_faults_ = 0;
  std::uint64_t total_recoveries_ = 0;
  std::uint64_t by_kind_[kNumFaultKinds] = {};
};

}  // namespace llp::fault
