// Deterministic fault injector: the FaultHook implementation behind
// LLP_FAULT.
//
// Installed into the Runtime, the injector counts every instrumented loop's
// invocations itself (so its timeline is independent of the registry's
// post-join accounting) and fires the FaultPlan's entries at exactly the
// keyed (region, invocation, lane) points:
//
//   throw — llp::LaneError carrying the RegionId, so recovery layers can
//           attribute the failure;
//   nan   — one quiet NaN written into a registered array at a
//           seed-deterministic index (silent data corruption: only a health
//           check downstream can catch it);
//   delay — the lane sleeps (a straggler: the join survives it, the
//           imbalance metric and tuner-sample taint see it);
//   hang  — the lane never returns. The ThreadPool watchdog converts this
//           into llp::TimeoutError; the lane itself is leaked by design
//           (it references only the injector, which is immortal once
//           installed globally).
//
// Every firing is recorded in the owned HealthMonitor (and as a per-region
// fault in the region registry) and taints the invocation so perturbed
// timings can be discarded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/fault_hook.hpp"
#include "fault/fault_plan.hpp"
#include "fault/health.hpp"

namespace llp::fault {

class Injector final : public llp::FaultHook {
public:
  explicit Injector(FaultPlan plan = {});

  /// Replace the plan; resets firing counts and invocation counters (the
  /// timeline restarts), keeps registered arrays and health history.
  void set_plan(FaultPlan plan);
  const FaultPlan& plan() const;

  /// Restart the invocation timeline and per-spec firing budgets without
  /// touching the plan — call between runs that must fault identically.
  void reset_invocations();

  // FaultHook interface.
  std::uint64_t begin(RegionId region) override;
  void on_lane(RegionId region, std::uint64_t invocation, int lane) override;
  bool tainted(RegionId region, std::uint64_t invocation) override;

  /// One I/O fault decision, returned by io_fault() to the checkpoint
  /// writer's seam. `bit` is meaningful for kIoFlip only: the payload bit
  /// to flip (spec's bit= option, or seed-derived when unset).
  struct IoFault {
    FaultKind kind = FaultKind::kIoFlip;
    std::uint64_t bit = 0;
  };

  /// The I/O analogue of on_lane(): consulted by a durable writer before it
  /// emits frame `frame` of its `op`-th write operation on `stream` (a
  /// pseudo-region name, e.g. "ckpt"). Matches the plan's io* entries on
  /// (stream, op, frame) exactly as loop faults match
  /// (region, invocation, lane), honoring count, p, and seed; at most one
  /// entry fires per call (the first match wins). Returns false when
  /// nothing fires. Like on_lane, every firing is recorded in the health
  /// monitor; it never throws — acting on the fault is the writer's job.
  bool io_fault(std::string_view stream, std::uint64_t op, int frame,
                IoFault* out);

  /// Count write operations per stream for the io_fault timeline; returns
  /// the 0-based index of the operation that is starting (the io analogue
  /// of begin()). Reset by set_plan/reset_invocations.
  std::uint64_t begin_io(std::string_view stream);

  /// Arrays available as kNan poison targets, by name. The registered
  /// memory must outlive the registration (or be unregistered first), and
  /// should not be written by the region the fault targets, so the poison
  /// is not racy. Re-registering a name replaces it.
  void register_array(std::string name, double* data, std::size_t size);
  void unregister_array(const std::string& name);
  std::size_t registered_arrays() const;

  /// Total faults fired so far (all kinds / one kind).
  std::uint64_t faults_injected() const;
  std::uint64_t faults_injected(FaultKind kind) const;

  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

private:
  struct Target {
    double* data = nullptr;
    std::size_t size = 0;
  };

  // Fire `spec` at (region, inv, lane). Called with mu_ held for nan (the
  // target map is consulted); throw/delay/hang release the lock first.
  void fire_nan(const FaultSpec& spec, std::uint64_t key);
  bool should_fire(FaultSpec& spec, std::string_view region_name,
                   std::uint64_t inv, int lane) const;

  mutable std::mutex mu_;
  FaultPlan plan_;
  std::vector<int> fired_;  // per-spec firing count, parallel to plan_.specs
  std::map<RegionId, std::uint64_t> invocations_;
  std::map<RegionId, std::string> region_names_;  // cached registry lookups
  std::set<std::pair<RegionId, std::uint64_t>> tainted_;
  std::map<std::string, Target> targets_;
  std::map<std::string, std::uint64_t, std::less<>> io_ops_;
  std::uint64_t fired_total_ = 0;
  std::uint64_t fired_by_kind_[kNumFaultKinds] = {};
  HealthMonitor health_;
};

/// Install `injector` as the Runtime's fault hook (nullptr uninstalls).
/// The injector must outlive every instrumented loop run while installed.
void install(Injector* injector);

/// When LLP_FAULT is set and non-empty: parse it, build the process-global
/// injector, and install it. Idempotent; cheap when LLP_FAULT is unset.
/// Throws llp::Error on a malformed spec. Returns whether a global injector
/// is installed afterwards.
bool init_from_env();

/// The process-global injector created by init_from_env (or adopted via
/// set_global), nullptr before.
Injector* global_injector();

/// Make `injector` the process-global one and install it (for tools that
/// build plans from flags rather than the environment). Passing ownership;
/// replaces and uninstalls any previous global injector.
void set_global(std::unique_ptr<Injector> injector);

}  // namespace llp::fault
