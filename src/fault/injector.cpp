#include "fault/injector.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "core/runtime.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace llp::fault {

namespace {

// Deterministic draw for probabilistic specs: one value per
// (seed, region name, invocation, lane), independent of firing order.
double keyed_uniform(std::uint64_t seed, std::string_view region,
                     std::uint64_t inv, int lane) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (char c : region) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  h ^= inv * 0xc2b2ae3d27d4eb4fULL;
  h ^= static_cast<std::uint64_t>(lane) * 0x165667b19e3779f9ULL;
  return SplitMix64(h).uniform();
}

[[noreturn]] void hang_forever() {
  // Referencing nothing but this immortal loop: the lane sits here until
  // the process exits (the pool that ran it detaches it after the watchdog
  // fires). Deliberately not cancellable — that is what makes it a hang
  // rather than a straggler.
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

Injector::Injector(FaultPlan plan) { set_plan(std::move(plan)); }

void Injector::set_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  fired_.assign(plan_.specs.size(), 0);
  invocations_.clear();
  io_ops_.clear();
  tainted_.clear();
}

const FaultPlan& Injector::plan() const {
  // The plan is immutable between set_plan calls; specs are read without
  // the lock only via this accessor's caller holding no reference across a
  // set_plan (documented contract).
  return plan_;
}

void Injector::reset_invocations() {
  std::lock_guard<std::mutex> lock(mu_);
  fired_.assign(plan_.specs.size(), 0);
  invocations_.clear();
  io_ops_.clear();
  tainted_.clear();
}

std::uint64_t Injector::begin(RegionId region) {
  std::lock_guard<std::mutex> lock(mu_);
  return invocations_[region]++;
}

bool Injector::should_fire(FaultSpec& spec, std::string_view region_name,
                           std::uint64_t inv, int lane) const {
  if (!spec.matches(region_name, inv, lane)) return false;
  if (spec.probability < 1.0 &&
      keyed_uniform(plan_.seed, region_name, inv, lane) >= spec.probability) {
    return false;
  }
  return true;
}

void Injector::fire_nan(const FaultSpec& spec, std::uint64_t key) {
  // One quiet NaN per matching target, at a seed-deterministic index.
  auto poison = [&](const std::string& name, const Target& t) {
    if (t.data == nullptr || t.size == 0) return;
    std::uint64_t h = plan_.seed ^ key;
    for (char c : name) {
      h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    }
    t.data[h % t.size] = std::numeric_limits<double>::quiet_NaN();
  };
  if (spec.array.empty()) {
    for (const auto& [name, t] : targets_) poison(name, t);
  } else {
    const auto it = targets_.find(spec.array);
    if (it != targets_.end()) poison(it->first, it->second);
  }
}

void Injector::on_lane(RegionId region, std::uint64_t invocation, int lane) {
  // Collect the actions to take, then perform the blocking/throwing ones
  // outside the lock (other lanes must be able to consult the injector
  // while one lane sleeps or hangs).
  bool do_throw = false;
  bool do_hang = false;
  bool fired_here = false;
  double delay_ms = 0.0;
  std::string region_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plan_.specs.empty()) return;
    auto name_it = region_names_.find(region);
    if (name_it == region_names_.end()) {
      name_it = region_names_
                    .emplace(region, llp::regions().stats(region).name)
                    .first;
    }
    region_name = name_it->second;

    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      FaultSpec& spec = plan_.specs[i];
      if (is_io_kind(spec.kind)) continue;  // io_fault()'s timeline
      if (spec.count > 0 && fired_[i] >= spec.count) continue;
      if (!should_fire(spec, region_name, invocation, lane)) continue;
      ++fired_[i];
      ++fired_total_;
      ++fired_by_kind_[static_cast<int>(spec.kind)];
      fired_here = true;
      tainted_.insert({region, invocation});
      health_.note_fault(region, spec.kind);
      switch (spec.kind) {
        case FaultKind::kThrow: do_throw = true; break;
        case FaultKind::kNan: fire_nan(spec, invocation * 64 + lane); break;
        case FaultKind::kDelay: delay_ms += spec.delay_ms; break;
        case FaultKind::kHang: do_hang = true; break;
      }
    }
  }
  // The fault event goes out before the blocking/throwing actions so a hang
  // or an aborted lane still leaves its mark in the trace.
  if (fired_here) {
    Runtime::current().emit(Event{.t_ns = 0,
                                   .region = region,
                                   .a = static_cast<std::int64_t>(invocation),
                                   .b = 0,
                                   .kind = EventKind::kFault,
                                   .pad = 0,
                                   .lane = static_cast<std::int16_t>(lane),
                                   .tid = -1});
  }
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
  }
  if (do_throw) {
    throw LaneError(strfmt("injected fault: region %s invocation %llu lane %d",
                           region_name.c_str(),
                           static_cast<unsigned long long>(invocation), lane),
                    region, lane);
  }
  if (do_hang) hang_forever();
}

std::uint64_t Injector::begin_io(std::string_view stream) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = io_ops_.find(stream);
  if (it == io_ops_.end()) {
    it = io_ops_.emplace(std::string(stream), 0).first;
  }
  return it->second++;
}

bool Injector::io_fault(std::string_view stream, std::uint64_t op, int frame,
                        IoFault* out) {
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      FaultSpec& spec = plan_.specs[i];
      if (!is_io_kind(spec.kind)) continue;
      if (spec.count > 0 && fired_[i] >= spec.count) continue;
      if (!should_fire(spec, stream, op, frame)) continue;
      ++fired_[i];
      ++fired_total_;
      ++fired_by_kind_[static_cast<int>(spec.kind)];
      health_.note_fault(kNoRegion, spec.kind);
      if (out != nullptr) {
        out->kind = spec.kind;
        // Seed-derived bit unless the spec pinned one; the writer reduces it
        // modulo the frame's payload size.
        out->bit = spec.bit >= 0
                       ? static_cast<std::uint64_t>(spec.bit)
                       : SplitMix64(plan_.seed ^ (op * 0x9e3779b97f4a7c15ULL) ^
                                    static_cast<std::uint64_t>(frame))
                             .next();
      }
      fired = true;
      break;
    }
  }
  if (fired) {
    // Outside the injector lock: observers may query runtime state.
    Runtime::current().emit(Event{.t_ns = 0,
                                   .region = kNoRegion,
                                   .a = static_cast<std::int64_t>(op),
                                   .b = frame,
                                   .kind = EventKind::kFault,
                                   .pad = 0,
                                   .lane = -1,
                                   .tid = -1});
  }
  return fired;
}

bool Injector::tainted(RegionId region, std::uint64_t invocation) {
  std::lock_guard<std::mutex> lock(mu_);
  return tainted_.count({region, invocation}) != 0;
}

void Injector::register_array(std::string name, double* data,
                              std::size_t size) {
  LLP_REQUIRE(data != nullptr && size > 0, "bad poison target");
  std::lock_guard<std::mutex> lock(mu_);
  targets_[std::move(name)] = Target{data, size};
}

void Injector::unregister_array(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  targets_.erase(name);
}

std::size_t Injector::registered_arrays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return targets_.size();
}

std::uint64_t Injector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_total_;
}

std::uint64_t Injector::faults_injected(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_by_kind_[static_cast<int>(kind)];
}

namespace {
std::unique_ptr<Injector> g_injector;
}  // namespace

void install(Injector* injector) {
  Runtime::instance().set_fault_hook(injector);
}

Injector* global_injector() { return g_injector.get(); }

void set_global(std::unique_ptr<Injector> injector) {
  install(nullptr);
  g_injector = std::move(injector);
  if (g_injector != nullptr) install(g_injector.get());
}

bool init_from_env() {
  if (g_injector != nullptr) return true;
  const std::string spec = env::get_string("LLP_FAULT", "");
  if (spec.empty()) return false;
  set_global(std::make_unique<Injector>(FaultPlan::parse(spec)));
  return true;
}

}  // namespace llp::fault
