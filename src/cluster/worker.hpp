// The worker side of the sharded backend.
//
// A worker process is deliberately stateless across its lifetime boundary:
// everything it is — identity, zone slab, solver scalars, fault plan, the
// checkpoint generation holding its interiors — arrives in one INIT frame,
// so respawning a worker after a crash is the same code path as starting
// it the first time. The main loop is msg_driver's choreography over the
// socket rails: halo exchange (f3d/halo.hpp over a frame-backed
// HaloCommunicator), one solver step, one STEP_DONE progress ack carrying
// the residual contribution (and the slab's interiors on checkpoint
// steps). A beacon thread heartbeats independently of the main loop, which
// is what lets the coordinator tell a hung step (beats flow, progress
// stalls) from a frozen process (beats stop).
//
// Worker-scoped fault injection (the PR 2 grammar, interpreted here):
//   iocrash:w<slot>.step:<s>:0   raise(SIGKILL) before step s — a real
//                                abrupt death, no cleanup, no goodbye
//   hang:w<slot>.step:<s>:0      main loop hangs before step s; heartbeats
//                                continue (step-deadline detection)
//   delay:w<slot>.step:<s>:0     straggle delay_ms before step s
//   hang:w<slot>.freeze:<s>:0    heartbeats stop AND the loop hangs
//                                (missed-heartbeat detection)
//   throw:w<slot>.spawn:<a>:0    exit before READY on spawn attempt a
//                                ('*' + count=0: every attempt fails —
//                                the migration path)
// Any other region stays in the plan handed to the worker's own runtime,
// so ordinary loop faults fire inside the slab's solver as usual.
#pragma once

namespace llp::cluster {

/// Run the worker protocol over `fd` until the run completes or fails.
/// Blocking; returns the process exit code (llp::kExitOk on success).
/// Never throws — a fatal error is reported to the coordinator as a
/// kError frame and mapped to a nonzero code.
int worker_main(int fd);

}  // namespace llp::cluster
