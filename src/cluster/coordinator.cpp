#include "cluster/coordinator.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "cluster/detector.hpp"
#include "cluster/partition.hpp"
#include "cluster/protocol.hpp"
#include "cluster/worker.hpp"
#include "f3d/io.hpp"
#include "fault/fault_plan.hpp"
#include "fault/health.hpp"
#include "msg/frame.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace llp::cluster {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One live worker process: the supervision state beside the pipe.
struct WorkerProc {
  int slot = -1;
  int rank = -1;
  ZoneRange range;
  pid_t pid = -1;
  int fd = -1;
  llp::msg::FrameParser parser;
  std::vector<std::uint8_t> outq;  ///< unsent bytes (nonblocking writes)
  std::size_t out_off = 0;
  FailureDetector det;
  bool fd_open = false;
  /// Highest step for which this worker has sent halo traffic — the blame
  /// signal for coupled stalls (see the deadline sweep in event_loop).
  int last_halo_step = -1;
  /// STEP_DONE payloads held until every live worker reaches the step.
  std::map<int, StepDone> done;

  WorkerProc(DetectorConfig dcfg, llp::fault::HealthMonitor* health)
      : det(dcfg, health) {}
};

class Coordinator {
public:
  explicit Coordinator(const ClusterConfig& cfg) : cfg_(cfg) {}

  ClusterReport run();

private:
  // -- supervision ------------------------------------------------------
  void spawn(WorkerProc& w, int start_step, int generation);
  void kill_all();
  void backoff_before_respawn(int slot, int consecutive);
  void consume_one_shot_fault(int slot);
  std::string live_fault_spec() const;
  [[noreturn]] void exhaust(const std::string& why);

  // -- event loop -------------------------------------------------------
  /// Drive one epoch from `start_step`. Returns the failed slot index into
  /// workers_, or -1 when every worker finished the run.
  int event_loop(int start_step);
  bool handle_frame(WorkerProc& w, llp::msg::Frame&& f, std::int64_t now);
  void relay_halo(const WorkerProc& from, const llp::msg::Frame& f);
  void enqueue(WorkerProc& w, const std::vector<std::uint8_t>& bytes);
  bool flush_out(WorkerProc& w);
  void process_barrier_steps();
  void logline(const std::string& line);

  const ClusterConfig& cfg_;
  ClusterReport report_;
  llp::fault::HealthMonitor health_;
  fault::FaultPlan plan_;
  std::vector<char> consumed_;

  std::unique_ptr<f3d::MultiZoneGrid> staging_;
  std::unique_ptr<f3d::ckpt::CheckpointStore> store_;
  std::string meta_;

  std::vector<WorkerProc> workers_;      ///< live slots, rank order
  std::vector<int> consecutive_fail_;    ///< by slot id
  std::vector<int> attempts_;            ///< spawn count by slot id
  int total_zones_ = 0;
  int barrier_step_ = 0;   ///< next step whose global combine is pending
  int failed_worker_ = -1;
  std::string failure_text_;

  // One-step-late sealing: the generation staged at an upload step is
  // written when the next step's global residual (its first-replay
  // residual) is known.
  bool pending_ = false;
  f3d::SolverState pending_state_;

  // Solver scalars at the current epoch's start step (from the manifest of
  // the generation the epoch restores) — forwarded verbatim in every INIT.
  double epoch_state_cfl_ = 0.0;
  double epoch_state_residual_ = 0.0;
  double epoch_state_prev_residual_ = -1.0;

  std::int64_t t0_ms_ = 0;
};

void Coordinator::logline(const std::string& line) {
  const std::string stamped =
      strfmt("[%6lld ms] ", static_cast<long long>(now_ms() - t0_ms_)) + line;
  report_.log.push_back(stamped);
  if (cfg_.verbose) std::fprintf(stderr, "f3d_cluster: %s\n", stamped.c_str());
}

[[noreturn]] void Coordinator::exhaust(const std::string& why) {
  logline("FATAL: " + why);
  throw llp::ClusterError(why + " (recoveries=" +
                          std::to_string(report_.recoveries) +
                          ", respawns=" + std::to_string(report_.respawns) +
                          ", migrations=" +
                          std::to_string(report_.migrations) + ")");
}

std::string Coordinator::live_fault_spec() const {
  fault::FaultPlan live;
  live.seed = plan_.seed;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    if (!consumed_[i]) live.specs.push_back(plan_.specs[i]);
  }
  return live.empty() ? std::string() : live.to_string();
}

void Coordinator::consume_one_shot_fault(int slot) {
  // A one-shot worker-scoped fault that just brought `slot` down has done
  // its job; strip it from the plan the respawned workers receive, or the
  // fresh process (whose firing counters restart) would fault again on the
  // same step forever. Unlimited entries (count <= 0) are deliberately
  // never consumed — they model a persistent failure and drive the
  // migration path.
  std::string prefix = "w";
  prefix += std::to_string(slot);
  prefix += '.';
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const auto& spec = plan_.specs[i];
    if (!consumed_[i] && spec.count > 0 &&
        spec.region.rfind(prefix, 0) == 0) {
      consumed_[i] = 1;
      logline("consumed fault spec '" + spec.to_string() + "'");
      return;
    }
  }
}

void Coordinator::backoff_before_respawn(int slot, int consecutive) {
  // Capped exponential backoff with deterministic jitter: attempt k waits
  // base * 2^(k-1), capped, plus up to one base interval of SplitMix64
  // jitter keyed on (seed, slot, attempt) so reruns sleep identically and
  // simultaneous respawns do not stampede in lockstep.
  if (consecutive <= 0) return;
  const int shift = std::min(consecutive - 1, 20);
  std::int64_t wait = static_cast<std::int64_t>(cfg_.backoff_base_ms)
                      << shift;
  wait = std::min<std::int64_t>(wait, cfg_.backoff_max_ms);
  SplitMix64 rng(cfg_.seed ^ (static_cast<std::uint64_t>(slot) << 32) ^
                 static_cast<std::uint64_t>(consecutive));
  wait += static_cast<std::int64_t>(
      rng.below(static_cast<std::uint64_t>(cfg_.backoff_base_ms) + 1));
  logline(strfmt("slot %d: backoff %lld ms before respawn (attempt %d)",
                 slot, static_cast<long long>(wait), consecutive));
  std::this_thread::sleep_for(std::chrono::milliseconds(wait));
}

void Coordinator::spawn(WorkerProc& w, int start_step, int generation) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw llp::IoError(strfmt("socketpair failed: %s", std::strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw llp::IoError(strfmt("fork failed: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: keep only our end of our pipe, then either exec the worker
    // binary or run the worker loop in-process (tests, fuzz oracle).
    ::close(sv[0]);
    for (const WorkerProc& other : workers_) {
      if (other.fd_open && other.fd >= 0) ::close(other.fd);
    }
    if (cfg_.worker_exe.empty()) {
      ::_exit(worker_main(sv[1]));
    }
    const std::string fd_arg = std::to_string(sv[1]);
    ::execl(cfg_.worker_exe.c_str(), cfg_.worker_exe.c_str(), "--worker",
            "--fd", fd_arg.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the coordinator sees EOF before READY
  }
  ::close(sv[1]);
  const int flags = ::fcntl(sv[0], F_GETFL, 0);
  ::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);

  w.pid = pid;
  w.fd = sv[0];
  w.fd_open = true;
  w.parser = llp::msg::FrameParser();
  w.outq.clear();
  w.out_off = 0;
  w.done.clear();
  w.last_halo_step = start_step - 1;

  // The complete recipe: a cold start at step 0 and a respawn mid-run are
  // the same message with different (start_step, generation).
  WorkerInit init;
  init.slot = static_cast<std::uint32_t>(w.slot);
  init.rank = static_cast<std::uint32_t>(w.rank);
  init.ranks = static_cast<std::uint32_t>(workers_.size());
  init.attempt = static_cast<std::uint32_t>(attempts_[
      static_cast<std::size_t>(w.slot)]);
  init.zone_first = static_cast<std::uint32_t>(w.range.first);
  init.total_zones = static_cast<std::uint32_t>(total_zones_);
  init.start_step = static_cast<std::uint32_t>(start_step);
  init.total_steps = static_cast<std::uint32_t>(cfg_.steps);
  init.ckpt_every = static_cast<std::uint32_t>(std::max(cfg_.ckpt_every, 0));
  init.worker_threads = static_cast<std::uint32_t>(
      std::max(cfg_.worker_threads, 1));
  init.mode = static_cast<std::uint32_t>(cfg_.engine);
  init.heartbeat_ms = static_cast<std::uint32_t>(std::max(cfg_.heartbeat_ms,
                                                          1));
  init.generation = static_cast<std::uint32_t>(generation);
  init.spacing = cfg_.case_spec.spacing;
  init.mach = cfg_.case_spec.freestream.mach;
  init.alpha_deg = cfg_.case_spec.freestream.alpha_deg;
  init.beta_deg = cfg_.case_spec.freestream.beta_deg;
  init.cfl = cfg_.cfl;
  init.kappa_i = cfg_.kappa_i;
  init.ckpt_dir = cfg_.ckpt_dir;
  init.meta = meta_;
  init.fault_spec = live_fault_spec();
  init.region_prefix = cfg_.region_prefix;
  // Solver scalars at start_step come from the generation's manifest; the
  // caller restored them into epoch state before spawning.
  init.state_cfl = epoch_state_cfl_;
  init.state_residual = epoch_state_residual_;
  init.state_prev_residual = epoch_state_prev_residual_;
  for (int z = w.range.first; z < w.range.end(); ++z) {
    WorkerZone wz;
    wz.dims = staging_->zone(z).dims();
    for (int f = 0; f < f3d::kNumFaces; ++f) {
      wz.bc[static_cast<std::size_t>(f)] =
          static_cast<std::uint32_t>(staging_->bcs(z).face[f]);
    }
    init.zones.push_back(wz);
  }
  llp::msg::Frame f;
  f.type = static_cast<std::uint32_t>(MsgType::kInit);
  f.payload = encode_init(init);
  enqueue(w, llp::msg::encode_frame(f));
  flush_out(w);

  w.det.on_spawn(now_ms());
  ++attempts_[static_cast<std::size_t>(w.slot)];
  logline(strfmt("slot %d: spawned pid %d (rank %d/%d, zones [%d,%d), "
                 "start step %d, gen %d)",
                 w.slot, static_cast<int>(pid), w.rank,
                 static_cast<int>(workers_.size()), w.range.first,
                 w.range.end(), start_step, generation));
}

void Coordinator::kill_all() {
  for (WorkerProc& w : workers_) {
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
    if (w.fd_open) {
      ::close(w.fd);
      w.fd_open = false;
    }
    w.outq.clear();
    w.out_off = 0;
    w.done.clear();
  }
}

void Coordinator::enqueue(WorkerProc& w, const std::vector<std::uint8_t>& b) {
  if (!w.fd_open) return;
  // Compact the consumed prefix occasionally so the queue does not grow
  // without bound across a long run.
  if (w.out_off > (1u << 16) && w.out_off * 2 > w.outq.size()) {
    w.outq.erase(w.outq.begin(),
                 w.outq.begin() + static_cast<std::ptrdiff_t>(w.out_off));
    w.out_off = 0;
  }
  w.outq.insert(w.outq.end(), b.begin(), b.end());
}

bool Coordinator::flush_out(WorkerProc& w) {
  while (w.fd_open && w.out_off < w.outq.size()) {
    const ssize_t n = ::send(w.fd, w.outq.data() + w.out_off,
                             w.outq.size() - w.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      w.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE/ECONNRESET: the worker is gone; reader declares
  }
  if (w.out_off == w.outq.size()) {
    w.outq.clear();
    w.out_off = 0;
  }
  return true;
}

void Coordinator::relay_halo(const WorkerProc& from, const llp::msg::Frame& f) {
  int src = 0, dest = 0;
  bool rightward = false;
  unpack_halo_route(f.b, &src, &dest, &rightward);
  if (src != from.rank || dest < 0 ||
      dest >= static_cast<int>(workers_.size()) || dest == from.rank) {
    throw llp::IoError(strfmt("bad halo route %d->%d from rank %d", src,
                              dest, from.rank));
  }
  ++report_.frames_relayed;
  enqueue(workers_[static_cast<std::size_t>(dest)], llp::msg::encode_frame(f));
}

bool Coordinator::handle_frame(WorkerProc& w, llp::msg::Frame&& f,
                               std::int64_t now) {
  w.det.on_frame(now);
  switch (static_cast<MsgType>(f.type)) {
    case MsgType::kReady:
      w.det.on_ready(now);
      logline(strfmt("slot %d: ready (attempt %llu)", w.slot,
                     static_cast<unsigned long long>(f.b)));
      return true;
    case MsgType::kHeartbeat:
      ++report_.heartbeats_seen;
      return true;
    case MsgType::kHalo:
      w.last_halo_step =
          std::max(w.last_halo_step, static_cast<int>(f.a / 2));
      relay_halo(w, f);
      return true;
    case MsgType::kStepDone: {
      const int step = static_cast<int>(f.b);
      if (step < barrier_step_ || step >= cfg_.steps) {
        throw llp::IoError(strfmt("slot %d acked implausible step %d",
                                  w.slot, step));
      }
      w.done[step] = decode_step_done(f);
      w.det.on_progress(step, now);
      // Progress clears the slot's consecutive-failure streak: the backoff
      // ladder restarts only if it fails again.
      consecutive_fail_[static_cast<std::size_t>(w.slot)] = 0;
      if (step == cfg_.steps - 1) w.det.on_finished();
      process_barrier_steps();
      return true;
    }
    case MsgType::kError:
      failure_text_ = std::string(f.payload.begin(), f.payload.end());
      logline(strfmt("slot %d: worker error: %s", w.slot,
                     failure_text_.c_str()));
      return false;  // fatal: the worker is about to exit
    default:
      throw llp::IoError(strfmt("slot %d sent unknown frame type %u", w.slot,
                                f.type));
  }
}

void Coordinator::process_barrier_steps() {
  // A step's global combine completes when every live worker has acked it.
  for (;;) {
    const int s = barrier_step_;
    if (s >= cfg_.steps) return;
    for (const WorkerProc& w : workers_) {
      if (w.done.find(s) == w.done.end()) return;
    }
    // Combine in rank order — fixed partition => fixed summation order =>
    // bit-reproducible residuals across reruns and recoveries.
    double total_sumsq = 0.0, total_points5 = 0.0;
    for (WorkerProc& w : workers_) {
      const StepDone& sd = w.done.at(s);
      total_sumsq += sd.sumsq;
      total_points5 += sd.points5;
    }
    const double res = std::sqrt(total_sumsq / total_points5);
    report_.residuals[static_cast<std::size_t>(s)] = res;

    if (pending_) {
      // The generation staged at the previous upload step seals with this
      // step's residual: a restart replays this step and must reproduce it.
      store_->save(*staging_, pending_state_, res);
      pending_ = false;
      ++report_.generations_written;
      logline(strfmt("step %d: sealed generation for step %d (res %.6e)", s,
                     pending_state_.steps, res));
    }
    if (is_upload_step(s, cfg_.ckpt_every, cfg_.steps)) {
      for (WorkerProc& w : workers_) {
        const StepDone& sd = w.done.at(s);
        if (static_cast<int>(sd.zone_payloads.size()) != w.range.count) {
          throw llp::IoError(strfmt("slot %d uploaded %zu zones, owns %d",
                                    w.slot, sd.zone_payloads.size(),
                                    w.range.count));
        }
        for (int i = 0; i < w.range.count; ++i) {
          f3d::unpack_zone_interior(
              sd.zone_payloads[static_cast<std::size_t>(i)],
              staging_->zone(w.range.first + i));
        }
      }
      pending_state_ = f3d::SolverState{
          s + 1, cfg_.cfl, res,
          s > 0 ? report_.residuals[static_cast<std::size_t>(s - 1)] : -1.0};
      pending_ = true;
    }
    for (WorkerProc& w : workers_) w.done.erase(s);
    ++barrier_step_;
  }
}

int Coordinator::event_loop(int start_step) {
  barrier_step_ = start_step;
  failed_worker_ = -1;
  failure_text_.clear();

  std::vector<pollfd> fds;
  std::vector<std::uint8_t> buf(1u << 16);

  while (barrier_step_ < cfg_.steps) {
    fds.clear();
    bool any_open = false;
    for (const WorkerProc& w : workers_) {
      pollfd p{};
      p.fd = w.fd_open ? w.fd : -1;
      p.events = POLLIN;
      if (w.out_off < w.outq.size()) p.events |= POLLOUT;
      fds.push_back(p);
      any_open = any_open || w.fd_open;
    }
    if (!any_open) {
      // Every pipe is closed but steps remain: nothing can make progress.
      // (A fully-finished run exits via barrier_step_ above.)
      failed_worker_ = 0;
      failure_text_ = "all worker pipes closed before the run completed";
      return failed_worker_;
    }
    const int rc = ::poll(fds.data(), fds.size(), 5);
    if (rc < 0 && errno != EINTR) {
      throw llp::IoError(strfmt("poll failed: %s", std::strerror(errno)));
    }
    const std::int64_t now = now_ms();

    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerProc& w = workers_[i];
      if (!w.fd_open) continue;
      const short re = fds[i].revents;
      if (re & POLLOUT) {
        if (!flush_out(w)) { /* reader path below declares the death */ }
      }
      if (re & (POLLIN | POLLHUP | POLLERR)) {
        bool saw_eof = false;
        for (;;) {
          const ssize_t n = ::read(w.fd, buf.data(), buf.size());
          if (n > 0) {
            w.parser.feed(buf.data(), static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          saw_eof = true;  // EOF or hard error; verdict after parsing
          break;
        }
        // Parse everything buffered BEFORE judging an EOF: the orderly
        // pattern is final STEP_DONE then close, and the ack may arrive in
        // the same read burst as the hangup.
        try {
          llp::msg::Frame f;
          while (w.parser.next(&f)) {
            if (!handle_frame(w, std::move(f), now)) {
              w.det.declare(FailureKind::kCrashed);
              failed_worker_ = static_cast<int>(i);
              return failed_worker_;
            }
          }
        } catch (const llp::IoError& e) {
          // Corrupt stream: the worker (or its death mid-frame) cannot be
          // resynchronized — treat the peer as dead.
          w.det.declare(FailureKind::kProtocol);
          failure_text_ = strfmt("slot %d: protocol error: %s", w.slot,
                                 e.what());
          logline(failure_text_);
          failed_worker_ = static_cast<int>(i);
          return failed_worker_;
        }
        if (saw_eof) {
          ::close(w.fd);
          w.fd_open = false;
          if (w.det.state() != WorkerHealth::kFinished &&
              w.det.state() != WorkerHealth::kDead) {
            w.det.declare(FailureKind::kCrashed);
            if (failure_text_.empty()) {
              failure_text_ = strfmt("slot %d: pipe closed (crash) at step "
                                     "%d", w.slot, w.det.last_step() + 1);
            }
            logline(failure_text_);
            failed_worker_ = static_cast<int>(i);
            return failed_worker_;
          }
        }
      }
    }

    // Reap exits eagerly so a SIGKILLed worker's zombie is collected
    // promptly (the fd EOF remains the authoritative crash signal). Only
    // our own pids: the embedding process may have unrelated children.
    for (WorkerProc& w : workers_) {
      if (w.pid <= 0) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) > 0) w.pid = -1;
    }

    // The timeout ladder: silent workers and stalled steps become declared
    // failures on the same clock the heartbeat runs on. A hung worker
    // starves its neighbors of halo traffic, so several deadlines expire
    // in the same tick — blame the least progressed expired worker (the
    // one that stopped producing, not the ones blocked waiting on it).
    int blame = -1;
    int blame_key = 0;
    FailureKind blame_kind = FailureKind::kNone;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerProc& w = workers_[i];
      const FailureKind kind = w.det.would_fail(now);
      if (kind == FailureKind::kNone) continue;
      const int key = std::max(w.last_halo_step, w.det.last_step());
      if (blame < 0 || key < blame_key) {
        blame = static_cast<int>(i);
        blame_key = key;
        blame_kind = kind;
      }
    }
    if (blame >= 0) {
      WorkerProc& w = workers_[static_cast<std::size_t>(blame)];
      w.det.declare(blame_kind);
      failure_text_ = strfmt("slot %d: %s at step %d", w.slot,
                             to_string(blame_kind), w.det.last_step() + 1);
      logline(failure_text_);
      failed_worker_ = blame;
      return failed_worker_;
    }
  }
  return -1;
}

ClusterReport Coordinator::run() {
  t0_ms_ = now_ms();
  // Config rejections are typed: drivers map ValidationError to exit 3.
  auto require = [](bool ok, const char* what) {
    if (!ok) throw ValidationError(what);
  };
  require(cfg_.steps >= 1, "cluster: steps must be >= 1");
  require(cfg_.workers >= 1, "cluster: workers must be >= 1");
  require(!cfg_.ckpt_dir.empty(), "cluster: ckpt_dir is required");
  require(cfg_.heartbeat_ms >= 1 && cfg_.heartbeat_misses >= 1,
          "cluster: heartbeat config must be positive");
  require(cfg_.step_deadline_ms >= 1,
          "cluster: step deadline must be positive");

  total_zones_ = static_cast<int>(cfg_.case_spec.zones.size());
  require(total_zones_ >= 1, "cluster: case has no zones");

  plan_ = cfg_.fault_spec.empty() ? fault::FaultPlan{}
                                  : fault::FaultPlan::parse(cfg_.fault_spec);
  consumed_.assign(plan_.specs.size(), 0);

  staging_ = std::make_unique<f3d::MultiZoneGrid>(
      f3d::build_grid(cfg_.case_spec));
  if (cfg_.init_grid) cfg_.init_grid(*staging_);

  meta_ = strfmt("cluster z=%d steps=%d cfl=%.17g kappa=%.17g mode=%d "
                 "mach=%.17g alpha=%.17g beta=%.17g h=%.17g",
                 total_zones_, cfg_.steps, cfg_.cfl, cfg_.kappa_i,
                 static_cast<int>(cfg_.engine), cfg_.case_spec.freestream.mach,
                 cfg_.case_spec.freestream.alpha_deg,
                 cfg_.case_spec.freestream.beta_deg, cfg_.case_spec.spacing);
  f3d::ckpt::Config scfg;
  scfg.dir = cfg_.ckpt_dir;
  scfg.every = std::max(cfg_.ckpt_every, 1);
  scfg.keep_generations = cfg_.keep_generations;
  scfg.meta = meta_;
  store_ = std::make_unique<f3d::ckpt::CheckpointStore>(scfg);

  const int nworkers = clamp_workers(total_zones_, cfg_.workers);
  if (nworkers != cfg_.workers) {
    logline(strfmt("clamped %d workers to %d (one per zone max)",
                   cfg_.workers, nworkers));
  }
  report_.workers_initial = nworkers;
  report_.residuals.assign(static_cast<std::size_t>(cfg_.steps), 0.0);

  std::vector<int> active_slots(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    active_slots[static_cast<std::size_t>(i)] = i;
  }
  consecutive_fail_.assign(static_cast<std::size_t>(nworkers), 0);
  attempts_.assign(static_cast<std::size_t>(nworkers), 0);

  // Generation 0: the initial condition, durable before any worker exists,
  // so a cold start and every recovery walk the same restore path.
  int generation =
      store_->save(*staging_, f3d::SolverState{0, cfg_.cfl, 0.0, -1.0});
  ++report_.generations_written;
  int start_step = 0;
  epoch_state_cfl_ = cfg_.cfl;
  epoch_state_residual_ = 0.0;
  epoch_state_prev_residual_ = -1.0;

  const DetectorConfig dcfg{cfg_.heartbeat_ms, cfg_.heartbeat_misses,
                            cfg_.step_deadline_ms};

  for (;;) {  // epochs
    // (Re)build the worker set for the current survivor list.
    const auto ranges = partition_zones(
        total_zones_, static_cast<int>(active_slots.size()));
    workers_.clear();
    workers_.reserve(active_slots.size());
    for (std::size_t r = 0; r < active_slots.size(); ++r) {
      workers_.emplace_back(dcfg, &health_);
      workers_.back().slot = active_slots[r];
      workers_.back().rank = static_cast<int>(r);
      workers_.back().range = ranges[r];
    }
    pending_ = false;
    for (WorkerProc& w : workers_) spawn(w, start_step, generation);
    report_.respawns += static_cast<int>(workers_.size());

    const int failed = event_loop(start_step);
    if (failed < 0) break;  // run complete

    const int failed_slot = workers_[static_cast<std::size_t>(failed)].slot;
    kill_all();
    ++report_.recoveries;
    health_.note_recovery(llp::kNoRegion);
    if (report_.recoveries > cfg_.max_recoveries) {
      exhaust(strfmt("recovery budget exhausted (%d rollbacks); last "
                     "failure: %s", report_.recoveries,
                     failure_text_.c_str()));
    }
    const int consec = ++consecutive_fail_[
        static_cast<std::size_t>(failed_slot)];
    consume_one_shot_fault(failed_slot);

    if (consec > cfg_.max_respawns) {
      // The slot is beyond saving: migrate its zones onto the survivors.
      active_slots.erase(std::remove(active_slots.begin(),
                                     active_slots.end(), failed_slot),
                         active_slots.end());
      ++report_.migrations;
      logline(strfmt("slot %d: exceeded %d respawns — migrating its zones "
                     "onto %zu survivor(s)", failed_slot, cfg_.max_respawns,
                     active_slots.size()));
      if (active_slots.empty()) {
        exhaust("every worker slot exceeded its respawn budget; no "
                "survivor to migrate onto");
      }
    } else {
      backoff_before_respawn(failed_slot, consec);
    }

    // Global rollback: the newest generation that passes the full ladder
    // restores the staging grid and names the step the epoch resumes from.
    int gen = -1;
    std::string ladder;
    const f3d::ckpt::Manifest m =
        store_->load_newest_intact(*staging_, &gen, &ladder);
    if (!ladder.empty()) logline("ladder: " + ladder);
    generation = gen;
    start_step = m.state.steps;
    epoch_state_cfl_ = m.state.cfl;
    epoch_state_residual_ = m.state.residual;
    epoch_state_prev_residual_ = m.state.prev_residual;
    logline(strfmt("rollback to generation %d (step %d) after failure of "
                   "slot %d", gen, start_step, failed_slot));
  }

  // The final upload can never seal (there is no next step) — flush it
  // unsealed, exactly like the single-process store's end-of-run flush.
  if (pending_) {
    store_->save(*staging_, pending_state_);
    pending_ = false;
    ++report_.generations_written;
  }
  kill_all();

  report_.respawns -= report_.workers_initial;  // count beyond the first set
  report_.workers_final = static_cast<int>(workers_.size());
  report_.steps_completed = cfg_.steps;
  report_.final_residual =
      report_.residuals.empty() ? 0.0 : report_.residuals.back();
  report_.detector_faults = health_.total_faults();
  report_.health_report = health_.report();
  logline(strfmt("run complete: %d steps, final residual %.17g",
                 cfg_.steps, report_.final_residual));
  return std::move(report_);
}

}  // namespace

std::string ClusterReport::summary() const {
  return strfmt("cluster: %d steps, %d->%d workers, %d recoveries, "
                "%d respawns, %d migrations, %d generations, "
                "%ld halo frames relayed, final residual %.6e",
                steps_completed, workers_initial, workers_final, recoveries,
                respawns, migrations, generations_written, frames_relayed,
                final_residual);
}

ClusterReport run_cluster(const ClusterConfig& cfg) {
  Coordinator c(cfg);
  return c.run();
}

}  // namespace llp::cluster
