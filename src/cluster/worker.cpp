#include "cluster/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "cluster/protocol.hpp"
#include "core/runtime.hpp"
#include "f3d/engine.hpp"
#include "f3d/halo.hpp"
#include "f3d/io.hpp"
#include "f3d/solver.hpp"
#include "fault/injector.hpp"
#include "msg/frame.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/format.hpp"

namespace llp::cluster {

namespace {

using llp::msg::Frame;

// ---- worker-scoped fault interpretation ------------------------------

struct ClusterFaults {
  std::vector<fault::FaultSpec> step;    // w<slot>.step
  std::vector<fault::FaultSpec> freeze;  // w<slot>.freeze
  std::vector<fault::FaultSpec> spawn;   // w<slot>.spawn
  std::vector<int> step_fired, freeze_fired, spawn_fired;
};

// Split the plan: specs scoped to this worker's slot are interpreted by
// the worker loop itself; everything else goes to the runtime's injector.
ClusterFaults split_cluster_faults(fault::FaultPlan& plan, int slot) {
  ClusterFaults out;
  std::string prefix = "w";
  prefix += std::to_string(slot);
  prefix += '.';
  std::vector<fault::FaultSpec> rest;
  for (auto& spec : plan.specs) {
    if (spec.region == prefix + "step") {
      out.step.push_back(spec);
    } else if (spec.region == prefix + "freeze") {
      out.freeze.push_back(spec);
    } else if (spec.region == prefix + "spawn") {
      out.spawn.push_back(spec);
    } else if (spec.region.rfind("w", 0) == 0 &&
               spec.region.find('.') != std::string::npos &&
               spec.region.find_first_not_of("0123456789", 1) ==
                   spec.region.find('.')) {
      // Another slot's cluster fault: not ours, and not a loop region
      // either — drop it so the runtime injector never sees it.
    } else {
      rest.push_back(spec);
    }
  }
  plan.specs = std::move(rest);
  out.step_fired.assign(out.step.size(), 0);
  out.freeze_fired.assign(out.freeze.size(), 0);
  out.spawn_fired.assign(out.spawn.size(), 0);
  return out;
}

// Does spec fire at invocation `inv`? Budget-aware (count <= 0 means
// unlimited, like the injector).
bool fires(const fault::FaultSpec& spec, int* fired, std::uint64_t inv) {
  if (!(spec.any_invocation || spec.invocation == inv)) return false;
  if (spec.count > 0 && *fired >= spec.count) return false;
  ++*fired;
  return true;
}

[[noreturn]] void hang_forever() {
  for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
}

// ---- the frame-backed HaloCommunicator (socket rails) ----------------

class SocketChannel {
public:
  SocketChannel(int fd, std::mutex& write_mu, int rank, int size)
      : fd_(fd), write_mu_(write_mu), rank_(rank), size_(size) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }

  void send(int peer, int tag, std::span<const double> data) {
    Frame f;
    f.type = static_cast<std::uint32_t>(MsgType::kHalo);
    f.a = static_cast<std::uint64_t>(tag);
    f.b = pack_halo_route(rank_, peer, /*rightward=*/tag % 2 == 0);
    f.payload.resize(data.size() * sizeof(double));
    std::memcpy(f.payload.data(), data.data(), f.payload.size());
    std::lock_guard<std::mutex> lock(write_mu_);
    llp::msg::write_frame(fd_, f);
  }

  void recv(int peer, int tag, std::span<double> out) {
    const auto take = [&](Frame& f) {
      LLP_REQUIRE(f.payload.size() == out.size() * sizeof(double),
                  "halo frame size mismatch");
      std::memcpy(out.data(), f.payload.data(), f.payload.size());
    };
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (matches(pending_[i], peer, tag)) {
        take(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    for (;;) {
      Frame f;
      if (!llp::msg::read_frame(fd_, &f)) {
        throw IoError("coordinator closed the channel mid-exchange");
      }
      if (f.type != static_cast<std::uint32_t>(MsgType::kHalo)) {
        throw IoError(strfmt("unexpected frame type %u mid-exchange",
                             f.type));
      }
      if (matches(f, peer, tag)) {
        take(f);
        return;
      }
      pending_.push_back(std::move(f));
    }
  }

private:
  static bool matches(const Frame& f, int peer, int tag) {
    if (f.a != static_cast<std::uint64_t>(tag)) return false;
    int src = 0, dest = 0;
    bool rightward = false;
    unpack_halo_route(f.b, &src, &dest, &rightward);
    return src == peer;
  }

  int fd_;
  std::mutex& write_mu_;
  int rank_;
  int size_;
  std::vector<Frame> pending_;
};

static_assert(llp::msg::HaloCommunicator<SocketChannel>);

void send_frame_locked(int fd, std::mutex& mu, const Frame& f) {
  std::lock_guard<std::mutex> lock(mu);
  llp::msg::write_frame(fd, f);
}

int run_worker(int fd) {
  // 1. INIT: who am I, what do I own, where do I resume.
  Frame init_frame;
  if (!llp::msg::read_frame(fd, &init_frame) ||
      init_frame.type != static_cast<std::uint32_t>(MsgType::kInit)) {
    throw IoError("expected INIT frame");
  }
  const WorkerInit init = decode_init(init_frame);
  const int slot = static_cast<int>(init.slot);
  const int rank = static_cast<int>(init.rank);
  const int ranks = static_cast<int>(init.ranks);

  fault::FaultPlan plan;
  if (!init.fault_spec.empty()) {
    plan = fault::FaultPlan::parse(init.fault_spec);
  }
  ClusterFaults cf = split_cluster_faults(plan, slot);

  // 2. Spawn-fault seam: fail before READY, as a binary with a broken
  // environment would. The coordinator's backoff/retry owns what happens
  // next.
  for (std::size_t i = 0; i < cf.spawn.size(); ++i) {
    if (cf.spawn[i].kind == fault::FaultKind::kThrow &&
        fires(cf.spawn[i], &cf.spawn_fired[i], init.attempt)) {
      return kExitRunFailure;
    }
  }

  // 3. Reconstruct the slab: grid dims + BCs from INIT, interiors from the
  // handed-off checkpoint generation.
  std::vector<f3d::ZoneDims> dims;
  dims.reserve(init.zones.size());
  for (const WorkerZone& z : init.zones) dims.push_back(z.dims);
  f3d::MultiZoneGrid grid(dims, init.spacing);
  f3d::FreeStream fs;
  fs.mach = init.mach;
  fs.alpha_deg = init.alpha_deg;
  fs.beta_deg = init.beta_deg;
  grid.set_freestream(fs);
  for (std::size_t z = 0; z < init.zones.size(); ++z) {
    for (int face = 0; face < f3d::kNumFaces; ++face) {
      grid.bcs(static_cast<int>(z)).face[face] =
          static_cast<f3d::BcType>(init.zones[z].bc[static_cast<std::size_t>(
              face)]);
    }
  }
  // Range edges facing a neighbor worker become interfaces fed by halo
  // frames (internal interfaces were already set by the grid constructor).
  if (rank > 0) grid.bcs(0)[f3d::Face::kJMin] = f3d::BcType::kInterface;
  if (rank + 1 < ranks) {
    grid.bcs(grid.num_zones() - 1)[f3d::Face::kJMax] = f3d::BcType::kInterface;
  }

  f3d::ckpt::Config ckpt_cfg;
  ckpt_cfg.dir = init.ckpt_dir;
  ckpt_cfg.meta = init.meta;
  const f3d::ckpt::CheckpointStore store(ckpt_cfg);
  store.load_zone_range(static_cast<int>(init.generation),
                        static_cast<int>(init.zone_first), grid);

  // 4. The slab's own runtime: loop-level parallelism inside the worker is
  // independent of the decomposition (Behr's structure), and pinning the
  // thread count pins the per-zone reduction order — the bitwise story.
  Runtime rt(static_cast<int>(init.worker_threads));
  RuntimeScope scope(rt);
  fault::Injector injector(plan);
  for (int z = 0; z < grid.num_zones(); ++z) {
    auto& st = grid.zone(z).storage();
    std::string name = "q";
    name += std::to_string(z);
    injector.register_array(std::move(name), st.data(), st.size());
  }
  if (!plan.empty()) rt.set_fault_hook(&injector);

  f3d::SolverConfig cfg;
  cfg.freestream = fs;
  cfg.cfl = init.cfl;
  cfg.kappa_i = init.kappa_i;
  // Wire decode through the registry: a value no engine owns is a
  // malformed or version-skewed INIT frame, not something to cast blindly.
  if (!f3d::engine_from_wire(init.mode, &cfg.engine)) {
    throw ClusterError(
        strfmt("INIT carries unknown engine value %u", init.mode));
  }
  cfg.cfl_growth = 1.0;  // CFL ramping keys on the *local* residual; it
                         // must stay off or workers' timelines diverge
  cfg.region_prefix = init.region_prefix;
  cfg.region_prefix += ".w";
  cfg.region_prefix += std::to_string(slot);
  f3d::Solver solver(grid, cfg, rt);
  solver.restore(f3d::SolverState{static_cast<int>(init.start_step),
                                  init.state_cfl, init.state_residual,
                                  init.state_prev_residual});

  double points5 = 0.0;
  for (int z = 0; z < grid.num_zones(); ++z) {
    points5 += static_cast<double>(grid.zone(z).interior_points()) *
               f3d::kNumVars;
  }

  // 5. READY, then the beacon thread. The beacon carries the last
  // completed step so the coordinator's log can tell where a worker was
  // when it went quiet.
  std::mutex write_mu;
  {
    Frame ready;
    ready.type = static_cast<std::uint32_t>(MsgType::kReady);
    ready.a = static_cast<std::uint64_t>(slot);
    ready.b = init.attempt;
    send_frame_locked(fd, write_mu, ready);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> freeze_beats{false};
  std::atomic<long long> done_step{static_cast<long long>(init.start_step) -
                                   1};
  std::thread beacon([&] {
    const auto slice = std::chrono::milliseconds(2);
    auto next_beat = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(init.heartbeat_ms);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(slice);
      if (std::chrono::steady_clock::now() < next_beat) continue;
      next_beat += std::chrono::milliseconds(init.heartbeat_ms);
      if (freeze_beats.load(std::memory_order_acquire)) continue;
      Frame beat;
      beat.type = static_cast<std::uint32_t>(MsgType::kHeartbeat);
      beat.a = static_cast<std::uint64_t>(slot);
      beat.b = static_cast<std::uint64_t>(done_step.load() + 1);
      try {
        send_frame_locked(fd, write_mu, beat);
      } catch (...) {
        return;  // coordinator is gone; the main loop will find out too
      }
    }
  });
  struct BeaconGuard {
    std::atomic<bool>& stop;
    std::thread& t;
    ~BeaconGuard() {
      stop.store(true, std::memory_order_release);
      if (t.joinable()) t.join();
    }
  } beacon_guard{stop, beacon};

  // 6. The stepped main loop.
  SocketChannel channel(fd, write_mu, rank, ranks);
  std::vector<double> sendbuf, recvbuf;
  f3d::Zone* left = &grid.zone(0);
  f3d::Zone* right = &grid.zone(grid.num_zones() - 1);

  for (int s = static_cast<int>(init.start_step);
       s < static_cast<int>(init.total_steps); ++s) {
    // Worker-scoped faults fire at the top of the step, before any
    // protocol traffic for it.
    for (std::size_t i = 0; i < cf.freeze.size(); ++i) {
      if (cf.freeze[i].kind == fault::FaultKind::kHang &&
          fires(cf.freeze[i], &cf.freeze_fired[i],
                static_cast<std::uint64_t>(s))) {
        freeze_beats.store(true, std::memory_order_release);
        hang_forever();
      }
    }
    for (std::size_t i = 0; i < cf.step.size(); ++i) {
      auto& spec = cf.step[i];
      if (!fires(spec, &cf.step_fired[i], static_cast<std::uint64_t>(s))) {
        continue;
      }
      switch (spec.kind) {
        case fault::FaultKind::kIoCrash:
          ::raise(SIGKILL);  // genuinely abrupt: no flush, no unwind
          _exit(kExitCrashSim);  // unreachable
        case fault::FaultKind::kHang:
          hang_forever();
        case fault::FaultKind::kDelay:
          std::this_thread::sleep_for(std::chrono::duration<double,
                                                            std::milli>(
              spec.delay_ms));
          break;
        default:
          break;  // other kinds have no worker-scope meaning
      }
    }

    f3d::halo_exchange_step(channel, s, *left, *right, sendbuf, recvbuf);
    solver.step();
    done_step.store(s, std::memory_order_release);

    StepDone sd;
    const double rms = solver.residual();
    sd.sumsq = rms * rms * points5;
    sd.points5 = points5;
    if (is_upload_step(s, static_cast<int>(init.ckpt_every),
                       static_cast<int>(init.total_steps))) {
      sd.zone_payloads.resize(static_cast<std::size_t>(grid.num_zones()));
      for (int z = 0; z < grid.num_zones(); ++z) {
        f3d::pack_zone_interior(grid.zone(z),
                                sd.zone_payloads[static_cast<std::size_t>(z)]);
      }
    }
    Frame done;
    done.type = static_cast<std::uint32_t>(MsgType::kStepDone);
    done.a = static_cast<std::uint64_t>(slot);
    done.b = static_cast<std::uint64_t>(s);
    done.payload = encode_step_done(sd);
    send_frame_locked(fd, write_mu, done);
  }
  return kExitOk;
}

}  // namespace

int worker_main(int fd) {
  try {
    return run_worker(fd);
  } catch (const std::exception& e) {
    // Best-effort goodbye so the coordinator can log the cause instead of
    // just an EOF; the exit code is the real signal.
    try {
      Frame f;
      f.type = static_cast<std::uint32_t>(MsgType::kError);
      const char* what = e.what();
      f.payload.assign(what, what + std::strlen(what));
      llp::msg::write_frame(fd, f);
    } catch (...) {
    }
    return kExitRunFailure;
  }
}

}  // namespace llp::cluster
