#include "cluster/partition.hpp"

#include "util/error.hpp"

namespace llp::cluster {

std::vector<ZoneRange> partition_zones(int zones, int workers) {
  LLP_REQUIRE(zones >= 1, "need at least one zone");
  LLP_REQUIRE(workers >= 1 && workers <= zones,
              "workers must be in [1, zones]");
  std::vector<ZoneRange> ranges;
  ranges.reserve(static_cast<std::size_t>(workers));
  for (int r = 0; r < workers; ++r) {
    const int first = static_cast<int>(
        (static_cast<long long>(r) * zones) / workers);
    const int next = static_cast<int>(
        (static_cast<long long>(r + 1) * zones) / workers);
    ranges.push_back(ZoneRange{first, next - first});
  }
  return ranges;
}

int clamp_workers(int zones, int workers) {
  if (workers < 1) return 1;
  return workers < zones ? workers : zones;
}

}  // namespace llp::cluster
