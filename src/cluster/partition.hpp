// Contiguous zone-range partitioning for the sharded backend.
//
// Zones are stacked along J, so a worker must own a contiguous range: its
// left and right boundary zones each exchange one halo with the neighbor
// worker, and everything interior to the range exchanges through the
// worker's own MultiZoneGrid. The split is the classic near-equal block
// partition (floor(r*Z/W) .. floor((r+1)*Z/W)), which is deterministic —
// migration after a slot is abandoned re-runs the same function over the
// survivor count, so every process derives the same layout independently.
#pragma once

#include <vector>

namespace llp::cluster {

struct ZoneRange {
  int first = 0;  ///< first owned zone (global index)
  int count = 0;  ///< number of owned zones (>= 1)

  int end() const noexcept { return first + count; }
  bool operator==(const ZoneRange&) const = default;
};

/// Split `zones` zones over `workers` ranks, each range contiguous and
/// non-empty, ranges covering [0, zones) in rank order. Requires
/// 1 <= workers <= zones (clamp the worker count first; see
/// clamp_workers).
std::vector<ZoneRange> partition_zones(int zones, int workers);

/// Largest usable worker count: at most one worker per zone.
int clamp_workers(int zones, int workers);

}  // namespace llp::cluster
