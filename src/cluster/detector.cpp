#include "cluster/detector.hpp"

namespace llp::cluster {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kCrashed: return "crashed";
    case FailureKind::kReadyTimeout: return "ready-timeout";
    case FailureKind::kHeartbeatTimeout: return "heartbeat-timeout";
    case FailureKind::kStepDeadline: return "step-deadline";
    case FailureKind::kProtocol: return "protocol-error";
  }
  return "unknown";
}

void FailureDetector::note(FailureKind kind) {
  if (health_ == nullptr || kind == FailureKind::kNone) return;
  // Map onto the injector's fault taxonomy: a vanished process is the
  // io-crash shape, everything timeout-flavored is the hang shape, and a
  // protocol breach is a thrown error.
  llp::fault::FaultKind fk = llp::fault::FaultKind::kHang;
  if (kind == FailureKind::kCrashed) fk = llp::fault::FaultKind::kIoCrash;
  if (kind == FailureKind::kProtocol) fk = llp::fault::FaultKind::kThrow;
  health_->note_fault(llp::kNoRegion, fk);
}

}  // namespace llp::cluster
