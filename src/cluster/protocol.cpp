#include "cluster/protocol.hpp"

#include "util/error.hpp"

namespace llp::cluster {

using llp::msg::ByteReader;
using llp::msg::ByteWriter;
using llp::msg::Frame;

std::uint64_t pack_halo_route(int src_rank, int dest_rank, bool rightward) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank))
          << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dest_rank))
          << 16) |
         (rightward ? 1u : 0u);
}

void unpack_halo_route(std::uint64_t b, int* src_rank, int* dest_rank,
                       bool* rightward) {
  *src_rank = static_cast<int>(b >> 32);
  *dest_rank = static_cast<int>((b >> 16) & 0xffffu);
  *rightward = (b & 1u) != 0;
}

std::vector<std::uint8_t> encode_init(const WorkerInit& init) {
  ByteWriter w;
  w.put<std::uint32_t>(init.slot);
  w.put<std::uint32_t>(init.rank);
  w.put<std::uint32_t>(init.ranks);
  w.put<std::uint32_t>(init.attempt);
  w.put<std::uint32_t>(init.zone_first);
  w.put<std::uint32_t>(init.total_zones);
  w.put<std::uint32_t>(init.start_step);
  w.put<std::uint32_t>(init.total_steps);
  w.put<std::uint32_t>(init.ckpt_every);
  w.put<std::uint32_t>(init.worker_threads);
  w.put<std::uint32_t>(init.mode);
  w.put<std::uint32_t>(init.heartbeat_ms);
  w.put<std::uint32_t>(init.generation);
  w.put<double>(init.spacing);
  w.put<double>(init.mach);
  w.put<double>(init.alpha_deg);
  w.put<double>(init.beta_deg);
  w.put<double>(init.cfl);
  w.put<double>(init.kappa_i);
  w.put<double>(init.state_cfl);
  w.put<double>(init.state_residual);
  w.put<double>(init.state_prev_residual);
  w.put_string(init.ckpt_dir);
  w.put_string(init.meta);
  w.put_string(init.fault_spec);
  w.put_string(init.region_prefix);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(init.zones.size()));
  for (const WorkerZone& z : init.zones) {
    w.put<std::int32_t>(z.dims.jmax);
    w.put<std::int32_t>(z.dims.kmax);
    w.put<std::int32_t>(z.dims.lmax);
    for (std::uint32_t bc : z.bc) w.put<std::uint32_t>(bc);
  }
  return w.take();
}

WorkerInit decode_init(const Frame& frame) {
  ByteReader r(frame.payload);
  WorkerInit init;
  init.slot = r.get<std::uint32_t>("init slot");
  init.rank = r.get<std::uint32_t>("init rank");
  init.ranks = r.get<std::uint32_t>("init ranks");
  init.attempt = r.get<std::uint32_t>("init attempt");
  init.zone_first = r.get<std::uint32_t>("init zone_first");
  init.total_zones = r.get<std::uint32_t>("init total_zones");
  init.start_step = r.get<std::uint32_t>("init start_step");
  init.total_steps = r.get<std::uint32_t>("init total_steps");
  init.ckpt_every = r.get<std::uint32_t>("init ckpt_every");
  init.worker_threads = r.get<std::uint32_t>("init worker_threads");
  init.mode = r.get<std::uint32_t>("init mode");
  init.heartbeat_ms = r.get<std::uint32_t>("init heartbeat_ms");
  init.generation = r.get<std::uint32_t>("init generation");
  init.spacing = r.get<double>("init spacing");
  init.mach = r.get<double>("init mach");
  init.alpha_deg = r.get<double>("init alpha");
  init.beta_deg = r.get<double>("init beta");
  init.cfl = r.get<double>("init cfl");
  init.kappa_i = r.get<double>("init kappa_i");
  init.state_cfl = r.get<double>("init state cfl");
  init.state_residual = r.get<double>("init state residual");
  init.state_prev_residual = r.get<double>("init state prev residual");
  init.ckpt_dir = r.get_string("init ckpt_dir");
  init.meta = r.get_string("init meta");
  init.fault_spec = r.get_string("init fault_spec");
  init.region_prefix = r.get_string("init region_prefix");
  const auto zones = r.get<std::uint32_t>("init zone count");
  if (zones == 0 || zones > 4096) {
    throw llp::IoError("implausible init zone count");
  }
  init.zones.resize(zones);
  for (WorkerZone& z : init.zones) {
    z.dims.jmax = r.get<std::int32_t>("init zone dims");
    z.dims.kmax = r.get<std::int32_t>("init zone dims");
    z.dims.lmax = r.get<std::int32_t>("init zone dims");
    for (std::uint32_t& bc : z.bc) {
      bc = r.get<std::uint32_t>("init zone bc");
      if (bc >= 6) throw llp::IoError("implausible init bc type");
    }
  }
  return init;
}

std::vector<std::uint8_t> encode_step_done(const StepDone& sd) {
  ByteWriter w;
  w.put<double>(sd.sumsq);
  w.put<double>(sd.points5);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(sd.zone_payloads.size()));
  for (const auto& z : sd.zone_payloads) w.put_doubles(z);
  return w.take();
}

StepDone decode_step_done(const Frame& frame) {
  ByteReader r(frame.payload);
  StepDone sd;
  sd.sumsq = r.get<double>("step_done sumsq");
  sd.points5 = r.get<double>("step_done points5");
  const auto zones = r.get<std::uint32_t>("step_done zone count");
  if (zones > 4096) throw llp::IoError("implausible step_done zone count");
  sd.zone_payloads.resize(zones);
  for (auto& z : sd.zone_payloads) z = r.get_doubles("step_done zone");
  return sd;
}

bool is_upload_step(int step, int ckpt_every, int total_steps) {
  if (step == total_steps - 1) return true;  // final flush
  return ckpt_every > 0 && (step + 1) % ckpt_every == 0;
}

}  // namespace llp::cluster
