// The supervised multi-process sharded backend: coordinator side.
//
// run_cluster() forks N workers, hands each a contiguous zone range of the
// case, and drives a stepped halo exchange over AF_UNIX socketpairs — the
// star topology of protocol.hpp. Robustness is the point:
//
//   liveness     every worker heartbeats from a beacon thread and acks each
//                step; a per-worker FailureDetector turns silence into
//                heartbeat-timeout, a stalled main loop into step-deadline,
//                an EOF or reaped pid into crash — all within one liveness
//                window of the event (tests/integration assert the bound).
//
//   recovery     any declared failure triggers a global rollback: every
//                worker is SIGKILLed, the newest intact checkpoint
//                generation is loaded (the same validation ladder the
//                restart path uses), and the epoch restarts from its step.
//                Because a worker is stateless across respawns — the INIT
//                frame is its complete recipe — the resumed trajectory is
//                bitwise identical to an uninterrupted run for a fixed
//                partition and pinned thread counts.
//
//   backoff      a slot that keeps failing is respawned under capped
//                exponential backoff with deterministic jitter
//                (SplitMix64 keyed by seed/slot/attempt), and after
//                max_respawns consecutive failures its zones migrate onto
//                the survivors (the deterministic block partition re-run
//                over the smaller worker set). When the global recovery
//                budget or the last survivor is exhausted, run_cluster
//                throws llp::ClusterError — exit code 6 in the drivers.
//
// Checkpoint generations are written by the coordinator from worker zone
// uploads (STEP_DONE payloads on the cadence), sealed one step late with
// the next step's global residual, exactly like the single-process store.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "f3d/cases.hpp"
#include "f3d/solver.hpp"

namespace llp::cluster {

struct ClusterConfig {
  f3d::CaseSpec case_spec;
  /// Optional initial-condition hook run on the staging grid before
  /// generation 0 is written (pulses, walls); workers inherit the result
  /// through the checkpoint, so any initial condition shards correctly.
  std::function<void(f3d::MultiZoneGrid&)> init_grid;

  int steps = 10;
  int workers = 2;          ///< clamped to the zone count
  int worker_threads = 1;   ///< llp threads inside each worker
  double cfl = 2.0;
  double kappa_i = 0.25;
  f3d::EngineKind engine = f3d::EngineKind::kPencilScalar;
  std::string region_prefix = "run";

  int heartbeat_ms = 50;
  int heartbeat_misses = 5;
  int step_deadline_ms = 5000;

  int max_respawns = 3;     ///< consecutive failures per slot before migration
  int max_recoveries = 8;   ///< global rollback budget
  int backoff_base_ms = 10;
  int backoff_max_ms = 2000;
  std::uint64_t seed = 0x5eedc105ULL;

  std::string ckpt_dir;     ///< required: generation root
  int ckpt_every = 5;       ///< zone-upload / generation cadence
  int keep_generations = 3;

  std::string fault_spec;   ///< PR 2 grammar incl. w<slot>.* cluster scopes
  /// Path of a binary accepting "--worker --fd N" (normally f3d_cluster
  /// itself): workers are fork+exec'd. Empty: fork-only, the child calls
  /// worker_main() in-process — no exec, usable from library tests and the
  /// fuzz oracle.
  std::string worker_exe;

  bool verbose = false;     ///< mirror the event log to stderr
};

struct ClusterReport {
  std::vector<double> residuals;  ///< per standing step, global combine
  double final_residual = 0.0;
  int steps_completed = 0;
  int workers_initial = 0;
  int workers_final = 0;
  int recoveries = 0;        ///< global rollbacks performed
  int respawns = 0;          ///< worker spawns beyond the initial set
  int migrations = 0;        ///< slots abandoned onto survivors
  int generations_written = 0;
  long frames_relayed = 0;   ///< worker->worker halo frames forwarded
  long heartbeats_seen = 0;
  std::vector<std::string> log;  ///< timestamped supervision events
  std::uint64_t detector_faults = 0;  ///< failures the detector declared
  std::string health_report;  ///< HealthMonitor::report() of those verdicts

  std::string summary() const;
};

/// Run the sharded backend to completion. Throws llp::ValidationError on a
/// bad config, llp::IoError when no intact generation exists to recover
/// from, and llp::ClusterError when the recovery budget or the last
/// survivor slot is exhausted.
ClusterReport run_cluster(const ClusterConfig& cfg);

}  // namespace llp::cluster
