// The coordinator<->worker wire protocol.
//
// Every message is one CRC32C frame (msg/frame.hpp). The topology is a
// star: workers talk only to the coordinator over their AF_UNIX socketpair,
// and worker-to-worker halo traffic is relayed by the coordinator, which
// keeps each worker's failure domain equal to one fd. Frame word `a` is a
// step index or slot id, word `b` carries halo routing; structured payloads
// (INIT, STEP_DONE) use the ByteWriter/ByteReader flat encoding.
//
//   kInit       coordinator -> worker   everything a (re)spawned worker
//                                       needs: identity, zone range + BCs,
//                                       solver scalars, the checkpoint
//                                       generation to restore from, fault
//                                       plan, cadence and liveness config
//   kReady      worker -> coordinator   INIT applied, checkpoint loaded
//   kHalo       both directions         one interface face, a=step,
//                                       b=packed (src, dest, direction)
//   kStepDone   worker -> coordinator   per-step progress ack: residual
//                                       contribution, plus the owned zones'
//                                       interiors on checkpoint-cadence
//                                       steps
//   kHeartbeat  worker -> coordinator   periodic liveness beacon carrying
//                                       the last completed step
//   kError      worker -> coordinator   the worker caught a fatal error
//                                       and is about to exit (its what())
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "f3d/zone.hpp"
#include "msg/frame.hpp"

namespace llp::cluster {

enum class MsgType : std::uint32_t {
  kInit = 1,
  kReady = 2,
  kHalo = 3,
  kStepDone = 4,
  kHeartbeat = 5,
  kError = 6,
};

/// Pack halo routing into Frame::b: source rank, destination rank, and
/// whether the face travels rightward (toward rank+1, filling the
/// destination's JMin-side ghosts).
std::uint64_t pack_halo_route(int src_rank, int dest_rank, bool rightward);
void unpack_halo_route(std::uint64_t b, int* src_rank, int* dest_rank,
                       bool* rightward);

/// One owned zone as the worker must reconstruct it: dims plus the six
/// boundary types the coordinator's staging grid assigns it (interior
/// interfaces included — the worker overrides its range edges with
/// kInterface as its neighbors require).
struct WorkerZone {
  f3d::ZoneDims dims;
  std::array<std::uint32_t, 6> bc{};
};

/// The INIT payload: a worker is stateless across respawns, so this is the
/// complete recipe — the same message cold-starts a fresh worker at step 0
/// and re-seats a respawned one mid-run from a rollback generation.
struct WorkerInit {
  std::uint32_t slot = 0;      ///< stable identity (fault scoping)
  std::uint32_t rank = 0;      ///< position among live workers (routing)
  std::uint32_t ranks = 1;     ///< live worker count
  std::uint32_t attempt = 0;   ///< spawn attempt counter for this slot
  std::uint32_t zone_first = 0;
  std::uint32_t total_zones = 0;
  std::uint32_t start_step = 0;   ///< first step to execute
  std::uint32_t total_steps = 0;  ///< run target (exclusive)
  std::uint32_t ckpt_every = 0;   ///< zone-upload cadence; 0 = final only
  std::uint32_t worker_threads = 1;
  std::uint32_t mode = 1;  ///< f3d::EngineKind wire value (engine_from_wire)
  std::uint32_t heartbeat_ms = 50;
  std::uint32_t generation = 0;  ///< checkpoint generation to restore
  double spacing = 0.1;
  double mach = 2.0;
  double alpha_deg = 0.0;
  double beta_deg = 0.0;
  double cfl = 2.0;
  double kappa_i = 0.25;
  double state_cfl = 2.0;  ///< solver scalars at start_step
  double state_residual = 0.0;
  double state_prev_residual = -1.0;
  std::string ckpt_dir;
  std::string meta;        ///< checkpoint fingerprint to enforce on load
  std::string fault_spec;  ///< forwarded fault plan ("" = none)
  std::string region_prefix;
  std::vector<WorkerZone> zones;  ///< the owned range, in global order
};

std::vector<std::uint8_t> encode_init(const WorkerInit& init);
WorkerInit decode_init(const llp::msg::Frame& frame);

/// The STEP_DONE payload beside (a=slot, b=step): this worker's residual
/// contribution for the step, and — on checkpoint-cadence steps — its
/// zone interiors in canonical pack_zone_interior order for the
/// coordinator's staging grid.
struct StepDone {
  /// rms² · 5N over the owned slab. The solver defines its residual as
  /// rms = sqrt(sumsq/(5N))/dt, so rms²·5N = sumsq/dt² — and since every
  /// worker shares one dt, the global combine
  /// sqrt(Σ(rms²·5N)/Σ5N) = sqrt(Σsumsq/(5N_total))/dt reproduces the
  /// whole-grid residual with dt cancelled: the coordinator never has to
  /// reconstruct the time step.
  double sumsq = 0.0;
  double points5 = 0.0;  ///< 5 · owned interior points
  std::vector<std::vector<double>> zone_payloads;  ///< empty off-cadence
};

std::vector<std::uint8_t> encode_step_done(const StepDone& sd);
StepDone decode_step_done(const llp::msg::Frame& frame);

/// Should a worker attach zone payloads after completing 0-based step
/// `step`? True on the cadence boundary and on the final step, mirroring
/// the coordinator's generation schedule.
bool is_upload_step(int step, int ckpt_every, int total_steps);

}  // namespace llp::cluster
