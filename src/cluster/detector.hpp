// Per-worker failure detection: the heartbeat/deadline state machine.
//
// The coordinator cannot distinguish "slow" from "dead" by looking at a
// socket, so liveness is layered: (1) a closed fd or reaped pid is a crash,
// observed immediately; (2) a worker whose main loop hangs keeps
// heartbeating from its beacon thread, so a step-progress deadline converts
// the hang into a recoverable timeout; (3) a worker frozen wholesale
// (SIGSTOP, livelocked allocator, scheduler exile) stops heartbeating too
// and trips the missed-heartbeat timeout. The detector is clocked
// externally with millisecond timestamps, so tests drive every transition
// without sleeping, and each declared failure is recorded in a
// fault::HealthMonitor — the same accounting the in-process injector feeds.
#pragma once

#include <cstdint>
#include <string>

#include "fault/health.hpp"

namespace llp::cluster {

enum class WorkerHealth {
  kSpawning,  ///< INIT sent, READY not yet seen
  kRunning,   ///< READY seen, steps in flight
  kFinished,  ///< final STEP_DONE seen; EOF is now orderly
  kDead,      ///< failure declared (or crash observed)
};

enum class FailureKind {
  kNone,
  kCrashed,           ///< fd EOF / SIGCHLD before the final step
  kReadyTimeout,      ///< spawned but never sent READY in time
  kHeartbeatTimeout,  ///< no frame of any kind for the liveness window
  kStepDeadline,      ///< heartbeats flow but no step completes in time
  kProtocol,          ///< corrupt or nonsensical frame from the worker
};

const char* to_string(FailureKind kind);

struct DetectorConfig {
  int heartbeat_ms = 50;
  /// Missed beats before a silent worker is declared dead; the liveness
  /// window is heartbeat_ms * heartbeat_misses.
  int heartbeat_misses = 5;
  /// Wall-clock budget for one step (and for INIT -> READY).
  int step_deadline_ms = 5000;
};

/// One worker's liveness state machine. All timestamps are caller-supplied
/// steady-clock milliseconds.
class FailureDetector {
public:
  FailureDetector(DetectorConfig cfg, llp::fault::HealthMonitor* health)
      : cfg_(cfg), health_(health) {}

  void on_spawn(std::int64_t now_ms) {
    state_ = WorkerHealth::kSpawning;
    spawn_ms_ = last_frame_ms_ = last_progress_ms_ = now_ms;
  }

  void on_ready(std::int64_t now_ms) {
    state_ = WorkerHealth::kRunning;
    last_frame_ms_ = last_progress_ms_ = now_ms;
  }

  /// Any frame from the worker counts as a heartbeat.
  void on_frame(std::int64_t now_ms) { last_frame_ms_ = now_ms; }

  /// A STEP_DONE for 0-based `step` arrived.
  void on_progress(int step, std::int64_t now_ms) {
    last_step_ = step;
    last_frame_ms_ = last_progress_ms_ = now_ms;
  }

  void on_finished() { state_ = WorkerHealth::kFinished; }

  /// Declare a failure observed out-of-band (EOF, SIGCHLD, bad frame).
  void declare(FailureKind kind) {
    state_ = WorkerHealth::kDead;
    note(kind);
  }

  /// Evaluate the timeout ladder at `now_ms` without changing state: what
  /// failure WOULD be declared right now? The coordinator uses this to
  /// collect every expired worker in a tick and then blame only the least
  /// progressed one — when a worker hangs, its neighbors stall blocked on
  /// the missing halo and expire in the same window, and declaring the
  /// first-scanned victim would misattribute the fault.
  FailureKind would_fail(std::int64_t now_ms) const {
    if (state_ == WorkerHealth::kDead || state_ == WorkerHealth::kFinished) {
      return FailureKind::kNone;
    }
    const std::int64_t liveness =
        static_cast<std::int64_t>(cfg_.heartbeat_ms) * cfg_.heartbeat_misses;
    if (state_ == WorkerHealth::kSpawning) {
      return now_ms - spawn_ms_ > cfg_.step_deadline_ms
                 ? FailureKind::kReadyTimeout
                 : FailureKind::kNone;
    }
    if (now_ms - last_frame_ms_ > liveness) {
      return FailureKind::kHeartbeatTimeout;
    }
    if (now_ms - last_progress_ms_ > cfg_.step_deadline_ms) {
      return FailureKind::kStepDeadline;
    }
    return FailureKind::kNone;
  }

  /// Evaluate the ladder and latch kDead on a failure (would_fail +
  /// declare).
  FailureKind check(std::int64_t now_ms) {
    const FailureKind kind = would_fail(now_ms);
    if (kind != FailureKind::kNone) declare(kind);
    return kind;
  }

  WorkerHealth state() const noexcept { return state_; }
  /// Last 0-based step this worker completed; -1 before any.
  int last_step() const noexcept { return last_step_; }

private:
  void note(FailureKind kind);

  DetectorConfig cfg_;
  llp::fault::HealthMonitor* health_;  ///< may be null (tests)
  WorkerHealth state_ = WorkerHealth::kSpawning;
  std::int64_t spawn_ms_ = 0;
  std::int64_t last_frame_ms_ = 0;
  std::int64_t last_progress_ms_ = 0;
  int last_step_ = -1;
};

}  // namespace llp::cluster
