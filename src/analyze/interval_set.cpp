#include "analyze/interval_set.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace llp::analyze {

void IntervalSet::insert(std::int64_t begin, std::int64_t end) {
  if (end <= begin) return;
  // Fast path: extend the last raw interval in place when the insertion
  // continues it (a lane sweeping forward), so raw_ stays small without a
  // full normalization pass.
  if (!raw_.empty() && begin >= raw_.back().begin &&
      begin <= raw_.back().end) {
    if (end > raw_.back().end) raw_.back().end = end;
  } else {
    raw_.push_back({begin, end});
  }
  dirty_ = true;
}

void IntervalSet::normalize() const {
  if (!dirty_) return;
  norm_ = raw_;
  std::sort(norm_.begin(), norm_.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < norm_.size(); ++i) {
    if (out > 0 && norm_[i].begin <= norm_[out - 1].end) {
      norm_[out - 1].end = std::max(norm_[out - 1].end, norm_[i].end);
    } else {
      norm_[out++] = norm_[i];
    }
  }
  norm_.resize(out);
  dirty_ = false;
}

std::int64_t IntervalSet::cardinality() const {
  normalize();
  std::int64_t n = 0;
  for (const Interval& iv : norm_) n += iv.end - iv.begin;
  return n;
}

const std::vector<Interval>& IntervalSet::intervals() const {
  normalize();
  return norm_;
}

bool IntervalSet::contains(std::int64_t x) const {
  normalize();
  auto it = std::upper_bound(norm_.begin(), norm_.end(), x,
                             [](std::int64_t v, const Interval& iv) {
                               return v < iv.begin;
                             });
  return it != norm_.begin() && x < std::prev(it)->end;
}

bool IntervalSet::first_overlap(const IntervalSet& other, Interval* mine,
                                Interval* theirs,
                                std::int64_t* first) const {
  normalize();
  other.normalize();
  // Two-pointer walk over the sorted interval lists.
  std::size_t i = 0, j = 0;
  while (i < norm_.size() && j < other.norm_.size()) {
    const Interval& a = norm_[i];
    const Interval& b = other.norm_[j];
    const std::int64_t lo = std::max(a.begin, b.begin);
    const std::int64_t hi = std::min(a.end, b.end);
    if (lo < hi) {
      if (mine != nullptr) *mine = a;
      if (theirs != nullptr) *theirs = b;
      if (first != nullptr) *first = lo;
      return true;
    }
    if (a.end <= b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::string IntervalSet::to_string(std::size_t max_intervals) const {
  normalize();
  std::string s;
  for (std::size_t i = 0; i < norm_.size(); ++i) {
    if (i >= max_intervals) {
      s += strfmt(" ... (%zu more)", norm_.size() - i);
      break;
    }
    if (!s.empty()) s += ' ';
    s += strfmt("[%lld,%lld)", static_cast<long long>(norm_[i].begin),
                static_cast<long long>(norm_[i].end));
  }
  return s.empty() ? "(empty)" : s;
}

}  // namespace llp::analyze
