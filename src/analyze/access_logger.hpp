// AccessLogger — dynamic mode of the loop-safety analyzer.
//
// One RuntimeObserver registered with the runtime's seam. Its AccessHook
// facet receives the read/write intervals that instrumented bodies and
// AccessSpans report; its event stream drives the log lifecycle: a
// kRegionEnter opens (or re-enters) the region's log, the matching
// kRegionExit closes it, runs the dependence checker, and accumulates any
// findings. The last completed log per region is retained so it can be
// saved for offline replay (`llp_check replay`).
//
// Locking: one mutex guards everything. on_access fires once per coalesced
// interval — thousands per step, not per element — so a mutex is cheap and
// keeps the odd shapes safe (nested serial re-entry of a region from
// several lanes at once logs into one shared depth-counted log).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analyze/dep_check.hpp"
#include "core/observer.hpp"

namespace llp::analyze {

struct AccessLoggerConfig {
  CheckConfig check;
  /// Upper bound on accumulated findings across all regions.
  std::size_t max_findings = 256;
};

class AccessLogger final : public RuntimeObserver, public AccessHook {
public:
  explicit AccessLogger(AccessLoggerConfig config = {});

  // --- RuntimeObserver -------------------------------------------------
  void on_event(const Event& event) override;
  AccessHook* access_facet() override { return this; }

  // --- AccessHook ------------------------------------------------------
  int array_id(std::string_view name) override;
  void on_access(RegionId region, int lane, int array, AccessKind kind,
                 std::int64_t begin, std::int64_t end) override;
  void on_scratch(RegionId region, int lane, const void* ptr,
                  std::size_t bytes) override;

  // --- results ---------------------------------------------------------
  /// All findings so far, in discovery order.
  std::vector<Finding> findings() const;
  std::size_t num_findings() const;
  /// Region invocations checked (a zero-findings run still proves work).
  std::uint64_t invocations_checked() const;

  /// Formatted report: one line per finding, or the all-clear summary.
  std::string report() const;

  /// Save the last completed log of every region (offline replay input).
  void save_logs(std::ostream& out) const;

  /// Drop findings, counters, and retained logs; keep the name table.
  void reset();

private:
  struct ActiveLog {
    AccessLog log;
    int depth = 0;
  };

  AccessLog* active_locked(RegionId region);

  mutable std::mutex mu_;
  AccessLoggerConfig config_;
  std::vector<std::string> array_names_;
  std::map<RegionId, ActiveLog> active_;
  std::map<RegionId, std::uint64_t> invocation_counts_;
  std::map<RegionId, AccessLog> retained_;  ///< last completed per region
  std::vector<Finding> findings_;
  std::uint64_t checked_ = 0;
};

}  // namespace llp::analyze
