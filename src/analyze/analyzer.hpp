// llp::analyze — process-global dynamic analyzer: one AccessLogger
// registered with the runtime's observer seam.
//
// Same precedence rules as llp::obs (util/env.hpp): an explicit install()
// call (e.g. from f3d_run --analyze) always wins over the environment;
// LLP_ANALYZE=1 configures processes that were not started through a
// flag-aware tool, and LLP_ANALYZE_LOG=path additionally saves the last
// access log of every region at normal process exit for `llp_check
// replay`.
#pragma once

#include <string>

#include "analyze/access_logger.hpp"

namespace llp::analyze {

/// Install the process-global access logger and register it with the
/// runtime. Idempotent: a second call returns the existing logger (config
/// ignored).
AccessLogger& install(const AccessLoggerConfig& config = {});

/// The global logger, or nullptr when install()/init_from_env() never ran.
AccessLogger* global_logger();

/// Unregister and destroy the global logger (primarily for tests). Any
/// pending at-exit log export is cancelled.
void uninstall();

/// Path the at-exit hook saves access logs to; empty disables the hook.
void set_log_path(const std::string& path);
std::string log_path();

/// Save the global logger's retained logs to `path` now. Returns false
/// (with `error` filled, if given) when no logger is installed or the
/// write fails. Clears a pending at-exit export of the same path.
bool export_logs(const std::string& path, std::string* error = nullptr);

/// LLP_ANALYZE=1 installs the logger; LLP_ANALYZE_LOG=path also arranges
/// the at-exit log export. Returns true when a logger is installed after
/// the call. Idempotent; explicit install() beats the environment.
bool init_from_env();

}  // namespace llp::analyze
