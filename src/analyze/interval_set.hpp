// IntervalSet — the per-(lane, array, kind) access footprint of one region
// invocation.
//
// Half-open [begin, end) intervals over a caller-chosen 1-D coordinate
// space. Insertion is append-only and cheap (the common pattern — a lane
// sweeping forward through its share — appends presorted, adjacent
// intervals); normalization sorts and coalesces lazily the first time a
// query needs it. The dependence checker's core operation is
// first_overlap: the earliest coordinate two sets share, which becomes the
// "exact first-conflict index" in a finding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llp::analyze {

struct Interval {
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< half-open

  bool operator==(const Interval&) const = default;
};

class IntervalSet {
public:
  /// Add [begin, end); empty/backward intervals are ignored.
  void insert(std::int64_t begin, std::int64_t end);

  bool empty() const { return raw_.empty(); }

  /// Number of coordinates covered (after coalescing).
  std::int64_t cardinality() const;

  /// Sorted, disjoint, coalesced intervals.
  const std::vector<Interval>& intervals() const;

  /// Does the set cover coordinate x?
  bool contains(std::int64_t x) const;

  /// The earliest overlap between this set and `other`: on overlap fills
  /// `mine` / `theirs` with the two source intervals that collide and
  /// `first` with the smallest shared coordinate, and returns true.
  bool first_overlap(const IntervalSet& other, Interval* mine,
                     Interval* theirs, std::int64_t* first) const;

  /// "[a,b) [c,d) ..." for reports; at most `max_intervals` then "...".
  std::string to_string(std::size_t max_intervals = 8) const;

private:
  void normalize() const;

  std::vector<Interval> raw_;        // as inserted
  mutable std::vector<Interval> norm_;  // sorted + coalesced
  mutable bool dirty_ = false;
};

}  // namespace llp::analyze
