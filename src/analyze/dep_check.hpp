// Dependence checker — the doacross-legality test, mechanized.
//
// The paper's authors proved by hand that each outer loop they tagged
// C$doacross carries no dependence between iterations, and that every
// scratch array is a privatized pencil rather than a shared plane (§4).
// This checker performs the same proof obligation against an observed
// AccessLog: for every array, every pair of lanes, any overlap between one
// lane's writes and another lane's reads or writes is a loop-carried
// dependence — the directive would have been illegal, and the parallel run
// is a race. Overlapping reads are fine (that is what makes doacross loops
// common: inputs are shared, outputs are partitioned).
//
// The check is sound relative to what was logged: it sees exactly the
// intervals the instrumented accessors reported, for the lane partition of
// the observed run. It is an oracle for "this execution raced", not a
// static proof over all schedules — which is why CI runs it across the
// schedule/fault matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/access_log.hpp"

namespace llp::analyze {

enum class FindingKind : std::uint8_t {
  kWriteWrite,     ///< two lanes wrote overlapping intervals
  kReadWrite,      ///< one lane wrote what another read
  kSharedScratch,  ///< a plane-sized scratch buffer reachable from >1 lane
  /// The region's declared affine signature classified DOALL, yet this
  /// very invocation raced dynamically: the STATIC ANALYZER itself is
  /// broken (its verdict was more permissive than an observed execution).
  /// Emitted by AccessLogger alongside the dynamic findings that prove it.
  kStaticContradiction,
};

const char* finding_kind_name(FindingKind kind) noexcept;

/// One confirmed legality violation.
struct Finding {
  FindingKind kind = FindingKind::kWriteWrite;
  std::string region;
  std::uint64_t invocation = 0;
  std::string array;                ///< array name, or "" for scratch
  int lane_a = -1;                  ///< the writing lane
  int lane_b = -1;                  ///< the other lane
  Interval range_a;                 ///< lane_a's conflicting interval
  Interval range_b;                 ///< lane_b's conflicting interval
  std::int64_t first_conflict = 0;  ///< smallest shared coordinate
  std::size_t scratch_bytes = 0;    ///< kSharedScratch only
};

/// "loop-carried dependence in region R: lane 0 wrote [8,16), lane 1 read
/// [15,24) (first conflict at index 15)" — the line CI greps for.
std::string format_finding(const Finding& finding);

struct CheckConfig {
  /// A scratch buffer this large or larger, reported by more than one
  /// lane, violates the pencil rule. Default 64 KiB: comfortably above any
  /// per-lane pencil (a 1000-point line is ~19 KiB) and below any plane at
  /// the paper's zone sizes.
  std::size_t shared_scratch_bytes = 64 * 1024;
  /// Stop after this many findings per log (a broken loop conflicts
  /// everywhere; the first few lines carry the signal).
  std::size_t max_findings = 16;
};

/// Run the legality check over one invocation's log.
std::vector<Finding> check(const AccessLog& log,
                           const CheckConfig& config = {});

}  // namespace llp::analyze
