#include "analyze/access_logger.hpp"

#include <ostream>

#include "analyze/static/registry.hpp"
#include "core/runtime.hpp"
#include "util/format.hpp"

namespace llp::analyze {

AccessLogger::AccessLogger(AccessLoggerConfig config)
    : config_(std::move(config)) {}

AccessLog* AccessLogger::active_locked(RegionId region) {
  auto it = active_.find(region);
  return it == active_.end() ? nullptr : &it->second.log;
}

void AccessLogger::on_event(const Event& event) {
  if (event.region == kNoRegion) return;
  if (event.kind == EventKind::kRegionEnter) {
    std::lock_guard<std::mutex> lock(mu_);
    ActiveLog& al = active_[event.region];
    if (al.depth++ == 0) {
      al.log = AccessLog{};
      al.log.region_name =
          Runtime::current().regions().stats(event.region).name;
      al.log.invocation = invocation_counts_[event.region]++;
      al.log.lanes_used = static_cast<int>(event.b);
    }
    return;
  }
  if (event.kind != EventKind::kRegionExit) return;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(event.region);
  if (it == active_.end()) return;  // exit without enter: not ours to check
  if (--it->second.depth > 0) return;
  AccessLog log = std::move(it->second.log);
  active_.erase(it);
  log.arrays = array_names_;
  std::vector<Finding> found = check(log, config_.check);
  if (!found.empty()) {
    // Cross-validation against the static pass: a region whose declared
    // affine signature classified DOALL must never race dynamically. If it
    // did, the static analyzer itself is broken — surface that as its own
    // finding ahead of the races that prove it.
    const StaticLegality legality = static_legality(log.region_name);
    if (legality.declared && legality.verdict.parallel_ok()) {
      Finding contradiction;
      contradiction.kind = FindingKind::kStaticContradiction;
      contradiction.region = log.region_name;
      contradiction.invocation = log.invocation;
      found.insert(found.begin(), std::move(contradiction));
    }
  }
  for (Finding& f : found) {
    if (findings_.size() >= config_.max_findings) break;
    findings_.push_back(std::move(f));
  }
  ++checked_;
  retained_[event.region] = std::move(log);
}

int AccessLogger::array_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < array_names_.size(); ++i) {
    if (array_names_[i] == name) return static_cast<int>(i);
  }
  array_names_.emplace_back(name);
  return static_cast<int>(array_names_.size() - 1);
}

void AccessLogger::on_access(RegionId region, int lane, int array,
                             AccessKind kind, std::int64_t begin,
                             std::int64_t end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (AccessLog* log = active_locked(region)) {
    log->record(lane, array, kind, begin, end);
  }
}

void AccessLogger::on_scratch(RegionId region, int lane, const void* ptr,
                              std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (AccessLog* log = active_locked(region)) {
    log->record_scratch(lane, ptr, bytes);
  }
}

std::vector<Finding> AccessLogger::findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_;
}

std::size_t AccessLogger::num_findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_.size();
}

std::uint64_t AccessLogger::invocations_checked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checked_;
}

std::string AccessLogger::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = strfmt(
      "analyze: %zu finding(s) across %llu checked region invocation(s)\n",
      findings_.size(), static_cast<unsigned long long>(checked_));
  for (const Finding& f : findings_) {
    out += "  ";
    out += format_finding(f);
    out += '\n';
  }
  return out;
}

void AccessLogger::save_logs(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [region, log] : retained_) log.save(out);
}

void AccessLogger::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  invocation_counts_.clear();
  retained_.clear();
  findings_.clear();
  checked_ = 0;
}

}  // namespace llp::analyze
