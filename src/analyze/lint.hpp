// Static mode of the loop-safety analyzer: lint parallel-loop call sites.
//
// The dynamic checker proves what an execution DID; the linter flags what
// the source lets it do. It is a heuristic single-file scanner (no real
// C++ front end — comments and literals are scrubbed, parens balanced,
// lambdas located), tuned so the in-tree call sites pass clean and the
// classic mistakes are loud:
//
//   missing-region          parallel_for/parallel_reduce with no options
//                           argument at all: the loop is invisible to the
//                           profile, the trace, AND the analyzer.
//   empty-region-name       doacross("") — an anonymous region (the
//                           registry rejects it at runtime too).
//   shifted-index-write     body writes X[i +/- k] where i is the parallel
//                           induction variable: the signature of a
//                           loop-carried dependence (and of raw index
//                           arithmetic bypassing the logged accessor).
//   captured-shared-write   body writes through a by-reference capture at
//                           an index independent of both the induction
//                           variable and the lane: shared scratch that the
//                           pencil rule says must be privatized.
//   captured-reduction      body accumulates (+=, -=, ...) into a bare
//                           by-reference capture: an unsynchronized
//                           reduction; use parallel_reduce.
//
// A finding can be waived in place with a comment containing
// "llp-check: allow" on the same line (the quarantined example keeps its
// violations un-waived on purpose).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace llp::analyze {

struct LintFinding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message"
std::string format_lint_finding(const LintFinding& finding);

/// Lint one translation unit's source text.
std::vector<LintFinding> lint_source(std::string_view source,
                                     std::string_view filename);

/// Lint a file on disk; throws llp::Error when it cannot be read.
std::vector<LintFinding> lint_file(const std::string& path);

}  // namespace llp::analyze
