// AccessLog — everything the analyzer learned about one invocation of one
// region: per-lane read/write interval sets per array, plus which scratch
// buffers each lane touched.
//
// Logs are the interchange format between the two analyzer modes: dynamic
// mode fills them live through the AccessHook and checks them at region
// exit; `llp_check replay` loads saved logs and runs the same checker
// offline, so a finding from a production run can be re-examined (and
// regression-tested) without re-running the workload.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/interval_set.hpp"
#include "core/access_hook.hpp"

namespace llp::analyze {

/// Footprint of one lane on one array.
struct LaneAccess {
  IntervalSet reads;
  IntervalSet writes;

  bool empty() const { return reads.empty() && writes.empty(); }
};

/// One scratch buffer and the lanes that reported working in it. The
/// pointer is identity only (never dereferenced); saved logs carry it as an
/// opaque token.
struct ScratchUse {
  std::uintptr_t ptr = 0;
  std::size_t bytes = 0;
  std::vector<int> lanes;  ///< distinct, ascending
};

/// Access record of one region invocation.
class AccessLog {
public:
  std::string region_name;
  std::uint64_t invocation = 0;
  int lanes_used = 0;

  /// Dense array-id -> name table (ids are the AccessHook's).
  std::vector<std::string> arrays;

  /// Record one interval access; grows the lane/array tables on demand.
  void record(int lane, int array, AccessKind kind, std::int64_t begin,
              std::int64_t end);
  /// Record one scratch-buffer use.
  void record_scratch(int lane, const void* ptr, std::size_t bytes);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int num_arrays() const;

  /// Footprint of (lane, array); empty statics when never recorded.
  const LaneAccess& at(int lane, int array) const;

  const std::vector<ScratchUse>& scratch() const { return scratch_; }

  const std::string& array_name(int array) const;

  /// Text round trip. save() writes one "log ... end" block; load() reads
  /// the next block from the stream (false cleanly at EOF, throws
  /// llp::Error on a malformed block).
  void save(std::ostream& out) const;
  bool load(std::istream& in);

private:
  // lanes_[lane][array]; inner vectors ragged, grown on first touch.
  std::vector<std::vector<LaneAccess>> lanes_;
  std::vector<ScratchUse> scratch_;
};

/// Load every "log" block in a stream.
std::vector<AccessLog> load_logs(std::istream& in);

}  // namespace llp::analyze
