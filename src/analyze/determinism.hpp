// Reduction-determinism check: run a workload twice, compare bitwise.
//
// The runtime's parallel_reduce promises lane-ordered combination —
// identical results for a fixed thread count. Hand-rolled reductions
// (atomics, unordered combines) silently break that promise: floating-point
// addition does not commute in rounding, so the "race-free" atomic sum is
// still nondeterministic. The analyzer's determinism check catches exactly
// this class: execute the seeded workload twice under identical
// configuration and compare the results bit for bit (CRC32C digests in the
// report make two runs comparable across processes, e.g. in CI logs).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace llp::analyze {

struct DeterminismReport {
  bool deterministic = false;
  std::uint32_t crc_first = 0;
  std::uint32_t crc_second = 0;
  std::size_t first_mismatch = 0;  ///< element index; meaningful when !ok
  std::string message;
};

/// Run `workload` twice and bitwise-compare the returned values. The
/// workload owns its seeding: it must reset every input to the same state
/// on each call (the check is for *execution* nondeterminism, not sloppy
/// setup).
DeterminismReport check_determinism(
    const std::function<std::vector<double>()>& workload);

}  // namespace llp::analyze
