#include "analyze/determinism.hpp"

#include <cstring>

#include "util/crc32c.hpp"
#include "util/format.hpp"

namespace llp::analyze {

DeterminismReport check_determinism(
    const std::function<std::vector<double>()>& workload) {
  DeterminismReport r;
  const std::vector<double> first = workload();
  const std::vector<double> second = workload();
  r.crc_first = crc32c(first.data(), first.size() * sizeof(double));
  r.crc_second = crc32c(second.data(), second.size() * sizeof(double));
  if (first.size() != second.size()) {
    r.message = strfmt("result sizes differ: %zu vs %zu", first.size(),
                       second.size());
    return r;
  }
  // memcmp, not ==: NaNs must compare by representation (a poisoned lane
  // that produces NaN nondeterministically is exactly what we must catch),
  // and -0.0 vs +0.0 is a real bitwise difference.
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (std::memcmp(&first[i], &second[i], sizeof(double)) != 0) {
      r.first_mismatch = i;
      r.message = strfmt(
          "nondeterministic: element %zu differs (%.17g vs %.17g; crc %08x "
          "vs %08x)",
          i, first[i], second[i], r.crc_first, r.crc_second);
      return r;
    }
  }
  r.deterministic = true;
  r.message = strfmt("deterministic: %zu elements, crc %08x", first.size(),
                     r.crc_first);
  return r;
}

}  // namespace llp::analyze
