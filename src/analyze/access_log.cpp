#include "analyze/access_log.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::analyze {

namespace {
const LaneAccess kEmptyAccess;
const std::string kUnknownArray = "?";
}  // namespace

void AccessLog::record(int lane, int array, AccessKind kind,
                       std::int64_t begin, std::int64_t end) {
  if (lane < 0 || array < 0 || end <= begin) return;
  if (static_cast<std::size_t>(lane) >= lanes_.size()) {
    lanes_.resize(static_cast<std::size_t>(lane) + 1);
  }
  auto& row = lanes_[static_cast<std::size_t>(lane)];
  if (static_cast<std::size_t>(array) >= row.size()) {
    row.resize(static_cast<std::size_t>(array) + 1);
  }
  LaneAccess& acc = row[static_cast<std::size_t>(array)];
  (kind == AccessKind::kWrite ? acc.writes : acc.reads).insert(begin, end);
}

void AccessLog::record_scratch(int lane, const void* ptr, std::size_t bytes) {
  const auto key = reinterpret_cast<std::uintptr_t>(ptr);
  for (ScratchUse& s : scratch_) {
    if (s.ptr == key) {
      s.bytes = std::max(s.bytes, bytes);
      if (!std::binary_search(s.lanes.begin(), s.lanes.end(), lane)) {
        s.lanes.insert(
            std::lower_bound(s.lanes.begin(), s.lanes.end(), lane), lane);
      }
      return;
    }
  }
  scratch_.push_back({key, bytes, {lane}});
}

int AccessLog::num_arrays() const {
  std::size_t n = arrays.size();
  for (const auto& row : lanes_) n = std::max(n, row.size());
  return static_cast<int>(n);
}

const LaneAccess& AccessLog::at(int lane, int array) const {
  if (lane < 0 || static_cast<std::size_t>(lane) >= lanes_.size()) {
    return kEmptyAccess;
  }
  const auto& row = lanes_[static_cast<std::size_t>(lane)];
  if (array < 0 || static_cast<std::size_t>(array) >= row.size()) {
    return kEmptyAccess;
  }
  return row[static_cast<std::size_t>(array)];
}

const std::string& AccessLog::array_name(int array) const {
  if (array < 0 || static_cast<std::size_t>(array) >= arrays.size()) {
    return kUnknownArray;
  }
  return arrays[static_cast<std::size_t>(array)];
}

void AccessLog::save(std::ostream& out) const {
  out << "log " << (region_name.empty() ? "?" : region_name) << ' '
      << invocation << ' ' << lanes_used << '\n';
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    out << "array " << a << ' ' << arrays[a] << '\n';
  }
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    for (std::size_t array = 0; array < lanes_[lane].size(); ++array) {
      const LaneAccess& acc = lanes_[lane][array];
      for (int kind = 0; kind < 2; ++kind) {
        const IntervalSet& set = kind == 0 ? acc.reads : acc.writes;
        for (const Interval& iv : set.intervals()) {
          out << "acc " << lane << ' ' << array << ' '
              << (kind == 0 ? 'R' : 'W') << ' ' << iv.begin << ' ' << iv.end
              << '\n';
        }
      }
    }
  }
  for (const ScratchUse& s : scratch_) {
    out << "scratch " << s.bytes << ' ' << s.ptr;
    for (int lane : s.lanes) out << ' ' << lane;
    out << '\n';
  }
  out << "end\n";
}

bool AccessLog::load(std::istream& in) {
  *this = AccessLog{};
  std::string line;
  // Seek the next "log" header, skipping blank lines between blocks.
  for (;;) {
    if (!std::getline(in, line)) return false;
    if (line.rfind("log ", 0) == 0) break;
    if (!line.empty()) throw Error("access log: expected 'log', got: " + line);
  }
  {
    std::istringstream hdr(line.substr(4));
    if (!(hdr >> region_name >> invocation >> lanes_used)) {
      throw Error("access log: malformed header: " + line);
    }
  }
  while (std::getline(in, line)) {
    if (line == "end") return true;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "array") {
      std::size_t id = 0;
      std::string name;
      if (!(ls >> id >> name)) {
        throw Error("access log: malformed array row: " + line);
      }
      if (arrays.size() <= id) arrays.resize(id + 1);
      arrays[id] = name;
    } else if (tag == "acc") {
      int lane = 0, array = 0;
      char kind = 0;
      std::int64_t b = 0, e = 0;
      if (!(ls >> lane >> array >> kind >> b >> e) ||
          (kind != 'R' && kind != 'W')) {
        throw Error("access log: malformed acc row: " + line);
      }
      record(lane, array, kind == 'W' ? AccessKind::kWrite : AccessKind::kRead,
             b, e);
    } else if (tag == "scratch") {
      std::size_t bytes = 0;
      std::uintptr_t ptr = 0;
      if (!(ls >> bytes >> ptr)) {
        throw Error("access log: malformed scratch row: " + line);
      }
      int lane = 0;
      while (ls >> lane) {
        record_scratch(lane, reinterpret_cast<const void*>(ptr), bytes);
      }
    } else {
      throw Error("access log: unknown row: " + line);
    }
  }
  throw Error("access log: unterminated block for region " + region_name);
}

std::vector<AccessLog> load_logs(std::istream& in) {
  std::vector<AccessLog> logs;
  AccessLog log;
  while (log.load(in)) logs.push_back(std::move(log));
  return logs;
}

}  // namespace llp::analyze
