#include "analyze/dep_check.hpp"

#include "util/format.hpp"

namespace llp::analyze {

const char* finding_kind_name(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kWriteWrite: return "write-write";
    case FindingKind::kReadWrite: return "read-write";
    case FindingKind::kSharedScratch: return "shared-scratch";
    case FindingKind::kStaticContradiction: return "static-contradiction";
  }
  return "?";
}

std::string format_finding(const Finding& f) {
  if (f.kind == FindingKind::kStaticContradiction) {
    return strfmt(
        "static-analyzer contradiction in region %s (invocation %llu): "
        "declared affine signature classified DOALL but the run raced — "
        "the static verdict was MORE permissive than the dynamic analysis; "
        "fix the signature or the dependence engine",
        f.region.c_str(), static_cast<unsigned long long>(f.invocation));
  }
  if (f.kind == FindingKind::kSharedScratch) {
    std::string lanes;
    lanes = strfmt("lanes %d and %d", f.lane_a, f.lane_b);
    return strfmt(
        "shared scratch in region %s (invocation %llu): %zu-byte buffer "
        "reachable from %s — privatize it per lane (plane -> pencil)",
        f.region.c_str(), static_cast<unsigned long long>(f.invocation),
        f.scratch_bytes, lanes.c_str());
  }
  const char* verb_b =
      f.kind == FindingKind::kWriteWrite ? "wrote" : "read";
  return strfmt(
      "loop-carried dependence in region %s (invocation %llu, array %s): "
      "lane %d wrote [%lld,%lld), lane %d %s [%lld,%lld) — first conflict "
      "at index %lld",
      f.region.c_str(), static_cast<unsigned long long>(f.invocation),
      f.array.c_str(), f.lane_a, static_cast<long long>(f.range_a.begin),
      static_cast<long long>(f.range_a.end), f.lane_b, verb_b,
      static_cast<long long>(f.range_b.begin),
      static_cast<long long>(f.range_b.end),
      static_cast<long long>(f.first_conflict));
}

std::vector<Finding> check(const AccessLog& log, const CheckConfig& config) {
  std::vector<Finding> findings;
  const int lanes = log.num_lanes();
  const int arrays = log.num_arrays();

  auto full = [&] { return findings.size() >= config.max_findings; };

  // Cross-lane dependence: for each array, each ordered (writer, other)
  // lane pair, intersect writer's writes with the other lane's writes and
  // reads. A single lane (serial or disabled region) can never conflict
  // with itself — iteration order within a lane is the program order.
  for (int array = 0; array < arrays && !full(); ++array) {
    for (int a = 0; a < lanes && !full(); ++a) {
      const LaneAccess& wa = log.at(a, array);
      if (wa.writes.empty()) continue;
      for (int b = 0; b < lanes && !full(); ++b) {
        if (b == a) continue;
        const LaneAccess& ob = log.at(b, array);
        Finding f;
        f.region = log.region_name;
        f.invocation = log.invocation;
        f.array = log.array_name(array);
        f.lane_a = a;
        f.lane_b = b;
        // Write-write reported once per unordered pair (a < b); read-write
        // needs both orders, since reads and writes may sit in either lane.
        if (b > a && wa.writes.first_overlap(ob.writes, &f.range_a,
                                             &f.range_b,
                                             &f.first_conflict)) {
          f.kind = FindingKind::kWriteWrite;
          findings.push_back(f);
          if (full()) break;
        }
        if (wa.writes.first_overlap(ob.reads, &f.range_a, &f.range_b,
                                    &f.first_conflict)) {
          f.kind = FindingKind::kReadWrite;
          findings.push_back(f);
        }
      }
    }
  }

  // The pencil rule: scratch reachable from more than one lane must stay
  // below plane size. (Per-lane pencils each get their own buffer, so they
  // never appear with two lanes.)
  for (const ScratchUse& s : log.scratch()) {
    if (full()) break;
    if (s.lanes.size() < 2 || s.bytes < config.shared_scratch_bytes) continue;
    Finding f;
    f.kind = FindingKind::kSharedScratch;
    f.region = log.region_name;
    f.invocation = log.invocation;
    f.lane_a = s.lanes[0];
    f.lane_b = s.lanes[1];
    f.scratch_bytes = s.bytes;
    findings.push_back(f);
  }
  return findings;
}

}  // namespace llp::analyze
