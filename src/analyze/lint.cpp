#include "analyze/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::analyze {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replace comment bodies and string/char literal contents with spaces,
/// preserving every newline so byte offsets map to the original lines.
/// A comment whose text contains "llp-check: allow" leaves that marker in
/// place (it is the suppression mechanism).
std::string scrub(std::string_view src) {
  std::string out(src);
  constexpr std::string_view kAllow = "llp-check: allow";
  std::size_t i = 0;
  auto blank = [&](std::size_t begin, std::size_t end) {
    const bool keep = src.substr(begin, end - begin).find(kAllow) !=
                      std::string_view::npos;
    for (std::size_t k = begin; k < end; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
    if (keep) {
      // Re-stamp the marker at the start of the blanked region (same line).
      for (std::size_t k = 0; k < kAllow.size() && begin + k < end; ++k) {
        out[begin + k] = kAllow[k];
      }
    }
  };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t end = i;
      while (end < src.size() && src[end] != '\n') ++end;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      end = (end == std::string_view::npos) ? src.size() : end + 2;
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t end = i + 1;
      while (end < src.size() && src[end] != quote) {
        end += (src[end] == '\\') ? 2 : 1;
      }
      if (end < src.size()) ++end;
      // Keep the quotes themselves: `doacross("")` must still show "".
      blank(i + 1, end > i + 1 ? end - 1 : i + 1);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

int line_of(std::string_view text, std::size_t offset) {
  int line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

bool line_allows(std::string_view text, std::size_t offset) {
  std::size_t begin = text.rfind('\n', offset);
  begin = (begin == std::string_view::npos) ? 0 : begin + 1;
  std::size_t end = text.find('\n', offset);
  if (end == std::string_view::npos) end = text.size();
  return text.substr(begin, end - begin).find("llp-check: allow") !=
         std::string_view::npos;
}

/// Offset just past the matching close of the bracket at `open` (which must
/// be one of ( [ {), or npos when unbalanced.
std::size_t match_bracket(std::string_view text, std::size_t open) {
  const char oc = text[open];
  const char cc = (oc == '(') ? ')' : (oc == '[') ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == oc) ++depth;
    if (text[i] == cc && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

/// Split an argument list at top-level commas (brackets of all three kinds
/// balanced; '<' is NOT tracked — template args in the wild here always sit
/// inside parens or are part of the callee name, and '<' doubles as
/// less-than).
std::vector<std::string_view> split_args(std::string_view args) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(args.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < args.size() || !args.empty()) {
    out.push_back(args.substr(start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_bare_identifier(std::string_view s) {
  s = trim(s);
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  for (char c : s) {
    if (!is_ident_char(c) && c != ':' && c != '.') return false;
  }
  return true;
}

/// A located lambda inside a call's argument list.
struct Lambda {
  std::string_view captures;  ///< text inside [ ]
  std::string_view params;    ///< text inside ( ), possibly empty
  std::string_view body;      ///< text inside { }
  std::size_t body_offset = 0;  ///< offset of body within the full source
};

/// Find the first lambda in `args` (offsets relative to `args_offset` in the
/// scrubbed source). A '[' starts a lambda when the preceding non-space
/// char is '(' , ',' or the start of the list — i.e. it begins an argument.
bool find_lambda(std::string_view text, std::size_t args_begin,
                 std::size_t args_end, Lambda* out) {
  for (std::size_t i = args_begin; i < args_end; ++i) {
    if (text[i] != '[') continue;
    std::size_t p = i;
    while (p > args_begin &&
           std::isspace(static_cast<unsigned char>(text[p - 1]))) {
      --p;
    }
    if (p != args_begin && text[p - 1] != '(' && text[p - 1] != ',') {
      continue;  // subscript, not a capture list
    }
    const std::size_t cap_end = match_bracket(text, i);
    if (cap_end == std::string_view::npos || cap_end > args_end) return false;
    out->captures = text.substr(i + 1, cap_end - i - 2);
    std::size_t j = cap_end;
    while (j < args_end &&
           std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j < args_end && text[j] == '(') {
      const std::size_t par_end = match_bracket(text, j);
      if (par_end == std::string_view::npos || par_end > args_end) {
        return false;
      }
      out->params = text.substr(j + 1, par_end - j - 2);
      j = par_end;
    }
    // Skip `mutable`, `noexcept`, `-> T` up to the body.
    while (j < args_end && text[j] != '{') ++j;
    if (j >= args_end) return false;
    const std::size_t body_end = match_bracket(text, j);
    if (body_end == std::string_view::npos || body_end > args_end + 1) {
      return false;
    }
    out->body = text.substr(j + 1, body_end - j - 2);
    out->body_offset = j + 1;
    return true;
  }
  return false;
}

/// Last identifier token in a parameter declaration ("std::int64_t l" -> "l").
std::string_view param_name(std::string_view param) {
  param = trim(param);
  std::size_t end = param.size();
  while (end > 0 && !is_ident_char(param[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(param[begin - 1])) --begin;
  return param.substr(begin, end - begin);
}

/// Does `expr` mention identifier `name` as a whole token?
bool mentions(std::string_view expr, std::string_view name) {
  if (name.empty()) return false;
  std::size_t pos = 0;
  while ((pos = expr.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(expr[pos - 1]);
    const std::size_t after = pos + name.size();
    const bool right_ok = after >= expr.size() || !is_ident_char(expr[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

/// Heuristic: is `name` declared inside `body` (so writes to it are
/// lane-private)? Looks for a type-ish token followed by the name and a
/// declarator continuation: `auto qp = `, `double* rp=`, `Workspace& ws =`,
/// `std::vector<double> tmp(`, `T arr[`.
bool declared_in(std::string_view body, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = body.find(name, pos)) != std::string_view::npos) {
    const std::size_t after = pos + name.size();
    if ((pos > 0 && is_ident_char(body[pos - 1])) ||
        (after < body.size() && is_ident_char(body[after]))) {
      pos = after;
      continue;
    }
    // Preceding non-space char must end a type: identifier, '>', '*', '&'.
    std::size_t p = pos;
    while (p > 0 && (body[p - 1] == ' ' || body[p - 1] == '\n')) --p;
    if (p == 0) {
      pos = after;
      continue;
    }
    const char before = body[p - 1];
    const bool type_before =
        is_ident_char(before) || before == '>' || before == '*' ||
        before == '&';
    // Following non-space char must continue a declarator.
    std::size_t q = after;
    while (q < body.size() &&
           std::isspace(static_cast<unsigned char>(body[q]))) {
      ++q;
    }
    const bool decl_after =
        q < body.size() && (body[q] == '=' || body[q] == ';' ||
                            body[q] == '{' || body[q] == '(' ||
                            body[q] == '[' || body[q] == ',');
    // '=' must not be '=='.
    const bool not_cmp = !(q + 1 < body.size() && body[q] == '=' &&
                           body[q + 1] == '=');
    if (type_before && decl_after && not_cmp) {
      // "return name;" would sneak through ('return' ends in an ident
      // char); peek at the whole word before the name.
      std::size_t w = p;
      while (w > 0 && is_ident_char(body[w - 1])) --w;
      const std::string_view word = body.substr(w, p - w);
      if (word != "return" && word != "delete" && word != "co_return") {
        return true;
      }
    }
    pos = after;
  }
  return false;
}

/// Names captured by reference, and whether a default &-capture exists.
struct Captures {
  bool ref_default = false;
  std::vector<std::string_view> by_ref;
};

Captures parse_captures(std::string_view caps) {
  Captures out;
  for (std::string_view item : split_args(caps)) {
    item = trim(item);
    if (item == "&") {
      out.ref_default = true;
    } else if (!item.empty() && item.front() == '&') {
      out.by_ref.push_back(trim(item.substr(1)));
    }
  }
  return out;
}

bool captured_by_ref(const Captures& caps, std::string_view name) {
  for (std::string_view n : caps.by_ref) {
    if (n == name) return true;
  }
  return caps.ref_default;
}

constexpr std::string_view kLoopCalls[] = {"parallel_for", "parallel_reduce",
                                           "parallel_for_2d", "doacross"};

/// Options-bearing tokens: any of these anywhere in the argument list means
/// the call names its region (or explicitly opted into defaults).
constexpr std::string_view kOptionTokens[] = {
    "ForOptions", "in_region", "auto_tuned", "with_region", "kAuto"};

struct CallSite {
  std::string_view callee;
  std::size_t name_offset = 0;
  std::size_t args_begin = 0;  ///< just past '('
  std::size_t args_end = 0;    ///< at ')'
};

/// Find calls to the parallel-loop entry points. `text` is scrubbed source.
std::vector<CallSite> find_calls(std::string_view text) {
  std::vector<CallSite> out;
  for (std::string_view callee : kLoopCalls) {
    std::size_t pos = 0;
    while ((pos = text.find(callee, pos)) != std::string_view::npos) {
      const std::size_t after = pos + callee.size();
      // Qualified calls (llp::parallel_for) are the common case; only a
      // longer identifier ending in the callee name is a different symbol.
      const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
      if (!left_ok) {
        pos = after;
        continue;
      }
      // Optional template argument list: parallel_reduce<double>(...).
      std::size_t j = after;
      if (j < text.size() && text[j] == '<') {
        int depth = 0;
        while (j < text.size()) {
          if (text[j] == '<') ++depth;
          if (text[j] == '>' && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
      while (j < text.size() &&
             std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j >= text.size() || text[j] != '(') {
        pos = after;  // declaration, mention in a comment scrub, etc.
        continue;
      }
      const std::size_t close = match_bracket(text, j);
      if (close == std::string_view::npos) {
        pos = after;
        continue;
      }
      out.push_back(CallSite{callee, pos, j + 1, close - 1});
      pos = after;
    }
  }
  return out;
}

/// Scan a lambda body for writes of the form `name[expr] op` where op is an
/// assignment. Invokes `fn(name, expr, offset_in_body)` for each.
template <typename Fn>
void for_each_indexed_write(std::string_view body, Fn&& fn) {
  std::size_t i = 0;
  while (i < body.size()) {
    if (body[i] != '[') {
      ++i;
      continue;
    }
    // Identifier (possibly qualified: ws.q, zone->rhs) before '['.
    std::size_t end = i;
    while (end > 0) {
      const char c = body[end - 1];
      if (is_ident_char(c) || c == '.' || c == ':') {
        --end;
      } else if (c == '>' && end > 1 && body[end - 2] == '-') {
        end -= 2;  // the -> of a pointer member access
      } else {
        break;
      }
    }
    const std::string_view name = body.substr(end, i - end);
    if (name.empty() || !is_ident_char(name.front())) {
      ++i;
      continue;
    }
    const std::size_t sub_end = match_bracket(body, i);
    if (sub_end == std::string_view::npos) {
      ++i;
      continue;
    }
    const std::string_view expr = body.substr(i + 1, sub_end - i - 2);
    // What follows the subscript? Allow chained subscripts a[i][j].
    std::size_t j = sub_end;
    while (j < body.size() && body[j] == '[') {
      const std::size_t nxt = match_bracket(body, j);
      if (nxt == std::string_view::npos) break;
      j = nxt;
    }
    while (j < body.size() &&
           std::isspace(static_cast<unsigned char>(body[j]))) {
      ++j;
    }
    const bool compound =
        j + 1 < body.size() && body[j + 1] == '=' &&
        (body[j] == '+' || body[j] == '-' || body[j] == '*' ||
         body[j] == '/');
    const bool plain = j < body.size() && body[j] == '=' &&
                       (j + 1 >= body.size() || body[j + 1] != '=');
    if (plain || compound) fn(name, expr, i);
    i = sub_end;
  }
}

void lint_call(std::string_view text, const CallSite& call,
               std::string_view filename,
               std::vector<LintFinding>* findings) {
  auto report = [&](std::size_t offset, const char* rule,
                    std::string message) {
    if (line_allows(text, offset)) return;
    findings->push_back(LintFinding{std::string(filename),
                                    line_of(text, offset), rule,
                                    std::move(message)});
  };

  const std::string_view args =
      text.substr(call.args_begin, call.args_end - call.args_begin);

  if (call.callee == "doacross") {
    // Region name is the first argument; `doacross("")` is anonymous.
    const std::vector<std::string_view> parts = split_args(args);
    if (!parts.empty() && trim(parts.front()) == "\"\"") {
      report(call.name_offset, "empty-region-name",
             "doacross region name is empty; analyzer findings would be "
             "anonymous");
    }
  } else {
    bool has_options = false;
    for (std::string_view token : kOptionTokens) {
      if (mentions(args, token)) has_options = true;
    }
    if (!has_options) {
      // A trailing bare identifier (or member access) is an options
      // variable built elsewhere — treat as labeled.
      const std::vector<std::string_view> parts = split_args(args);
      if (!parts.empty() && is_bare_identifier(parts.back())) {
        has_options = true;
      }
    }
    if (!has_options) {
      report(call.name_offset, "missing-region",
             strfmt("%s call has no options argument: give the loop a "
                    "region (ForOptions().in_region(...)) so the profiler "
                    "and analyzer can see it",
                    std::string(call.callee).c_str()));
    }
  }

  Lambda lambda;
  if (!find_lambda(text, call.args_begin, call.args_end, &lambda)) return;

  const std::vector<std::string_view> params = split_args(lambda.params);
  const std::string_view induction =
      params.empty() ? std::string_view{} : param_name(params.front());
  const Captures caps = parse_captures(lambda.captures);

  for_each_indexed_write(
      lambda.body, [&](std::string_view name, std::string_view expr,
                       std::size_t body_off) {
        const std::size_t offset = lambda.body_offset + body_off;
        // Writes through the lane context's logged accessor or to
        // body-local storage are fine by construction.
        const bool local = declared_in(lambda.body, name) ||
                           mentions(name, "ctx");
        const bool uses_induction = mentions(expr, induction);
        const bool lane_indexed =
            mentions(expr, "lane") || mentions(expr, "ctx");
        if (!local && uses_induction &&
            (expr.find('+') != std::string_view::npos ||
             expr.find('-') != std::string_view::npos)) {
          report(offset, "shifted-index-write",
                 strfmt("write to %s[%s] at an offset of the induction "
                        "variable '%s': loop-carried dependence; route the "
                        "access through a logged accessor (llp::AccessSpan) "
                        "and prove it with --analyze",
                        std::string(name).c_str(),
                        std::string(trim(expr)).c_str(),
                        std::string(induction).c_str()));
          return;
        }
        if (!local && !uses_induction && !lane_indexed &&
            captured_by_ref(caps, name)) {
          report(offset, "captured-shared-write",
                 strfmt("write to by-reference capture %s[%s] at a "
                        "lane-independent index: shared scratch; privatize "
                        "it per lane (plane -> pencil)",
                        std::string(name).c_str(),
                        std::string(trim(expr)).c_str()));
        }
      });

  // Bare compound assignment into a by-ref captured scalar: `sum += ...`.
  std::size_t i = 0;
  const std::string_view body = lambda.body;
  while (i + 1 < body.size()) {
    const bool compound = body[i + 1] == '=' &&
                          (body[i] == '+' || body[i] == '-' ||
                           body[i] == '*' || body[i] == '/');
    if (!compound) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(body[end - 1]))) {
      --end;
    }
    if (end == 0 || body[end - 1] == ']') {
      i += 2;  // indexed write; handled above
      continue;
    }
    std::size_t begin = end;
    while (begin > 0 && is_ident_char(body[begin - 1])) --begin;
    const std::string_view name = body.substr(begin, end - begin);
    if (!name.empty() &&
        !std::isdigit(static_cast<unsigned char>(name.front())) &&
        (begin == 0 || (body[begin - 1] != '.' && body[begin - 1] != '>' &&
                        body[begin - 1] != ':')) &&
        name != induction && name != "acc" && !declared_in(body, name) &&
        captured_by_ref(caps, name)) {
      report(lambda.body_offset + i, "captured-reduction",
             strfmt("unsynchronized accumulation into by-reference capture "
                    "'%s': use parallel_reduce (lane-ordered, "
                    "deterministic) instead",
                    std::string(name).c_str()));
    }
    i += 2;
  }
}

}  // namespace

std::string format_lint_finding(const LintFinding& f) {
  return strfmt("%s:%d: [%s] %s", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
}

std::vector<LintFinding> lint_source(std::string_view source,
                                     std::string_view filename) {
  const std::string text = scrub(source);
  std::vector<LintFinding> findings;
  for (const CallSite& call : find_calls(text)) {
    lint_call(text, call, filename, &findings);
  }
  // Stable order for reports: by line, then rule.
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<LintFinding> lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("llp_check: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(buf.str(), path);
}

}  // namespace llp::analyze
