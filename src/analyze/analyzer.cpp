#include "analyze/analyzer.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "core/runtime.hpp"
#include "util/env.hpp"

namespace llp::analyze {

namespace {

std::mutex g_mu;
std::unique_ptr<AccessLogger> g_logger;
std::string g_log_path;
bool g_atexit_registered = false;

void export_at_exit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    path = g_log_path;
  }
  if (path.empty() || g_logger == nullptr) return;
  export_logs(path);  // best effort; errors die with the process
}

void arm_atexit_locked() {
  if (!g_atexit_registered) {
    std::atexit(export_at_exit);
    g_atexit_registered = true;
  }
}

}  // namespace

AccessLogger& install(const AccessLoggerConfig& config) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_logger == nullptr) {
    g_logger = std::make_unique<AccessLogger>(config);
    Runtime::instance().add_observer(g_logger.get());
  }
  return *g_logger;
}

AccessLogger* global_logger() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_logger.get();
}

void uninstall() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_logger != nullptr) {
    Runtime::instance().remove_observer(g_logger.get());
    g_logger.reset();
  }
  g_log_path.clear();
}

void set_log_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_log_path = path;
  if (!path.empty()) arm_atexit_locked();
}

std::string log_path() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_log_path;
}

bool export_logs(const std::string& path, std::string* error) {
  AccessLogger* logger = global_logger();
  if (logger == nullptr) {
    if (error != nullptr) *error = "no access logger installed";
    return false;
  }
  std::ofstream out(path);
  if (out) logger->save_logs(out);
  if (!out) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_log_path == path) g_log_path.clear();  // done; skip at-exit
  return true;
}

bool init_from_env() {
  const bool enabled = env::get_flag("LLP_ANALYZE");
  const std::string path = env::get_string("LLP_ANALYZE_LOG", "");
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_logger != nullptr) {
      // Explicit install wins; the env var can still name the log file if
      // nothing set one yet.
      if (!path.empty() && g_log_path.empty()) {
        g_log_path = path;
        arm_atexit_locked();
      }
      return true;
    }
  }
  if (!enabled && path.empty()) return false;
  install();
  if (!path.empty()) set_log_path(path);
  return true;
}

}  // namespace llp::analyze
