// Process-global registry of declared affine signatures, keyed by region
// NAME (RegionIds are dense per-Runtime handles; names are the stable
// cross-runtime identity, the same key TuningDb uses).
//
// Three consumers:
//
//   * Tuner::state_for consults static_legality() before building a
//     candidate set: a region whose declared signature classifies
//     DOACROSS/SERIAL gets exactly one serial arm — the illegal
//     schedule x thread configs are pruned before a single sample runs.
//   * f3d::select_engine skips probing engines whose parallel outer loop
//     a non-DOALL sweep signature forbids.
//   * The dynamic checker cross-validates: a region declared and
//     classified DOALL that nevertheless produces a dynamic race finding
//     is a hard failure OF THE ANALYZER (FindingKind::kStaticContradiction,
//     fuzz OracleId::kStaticCross) — the static pass promised too much.
//
// Undeclared regions are unconstrained: legality defaults to "parallel
// ok", exactly the pre-PR-10 behavior. Declaring is opt-in per region.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/static/dependence.hpp"

namespace llp::analyze {

/// The static pass's answer to "may this region run in parallel?".
struct StaticLegality {
  bool declared = false;  ///< false: no signature, no constraint
  StaticVerdict verdict;  ///< valid when declared

  /// Parallel execution (any multi-thread schedule) is statically legal.
  /// Undeclared regions stay legal — the static pass only ever removes
  /// configurations, never invents permission the default didn't have.
  bool parallel_ok() const noexcept {
    return !declared || verdict.parallel_ok();
  }
};

/// One row of the classification table (llp_check deps).
struct ClassifiedRegion {
  std::string region;
  AffineSignature signature;
  StaticVerdict verdict;
};

/// Declare (or replace) the affine signature of a region. Re-declaring is
/// normal: each Solver instance re-derives signatures from its own zone
/// dimensions, and the latest declaration wins.
void declare_access(std::string_view region, AffineSignature signature);

/// Declare only if no signature exists yet — probe paths use this so a
/// more specific declaration (a test's, a solver's) is never clobbered.
bool declare_access_if_absent(std::string_view region,
                              AffineSignature signature);

/// Fetch a declared signature by region name. Returns false when the
/// region never declared one (out is untouched).
bool find_signature(std::string_view region, AffineSignature* out);

/// Classify `region`'s declared signature. `trips` (the observed trip
/// count, kUnknownTrips if the caller has none) refines a signature that
/// declared symbolic trips; a declared concrete trip count wins.
StaticLegality static_legality(std::string_view region,
                               std::int64_t trips = kUnknownTrips);

/// Every declared region with its verdict, sorted by name.
std::vector<ClassifiedRegion> classification_table();

/// Schedules legal under a verdict, for tables: DOALL admits every
/// schedule; anything else only serial execution (the runtime has no
/// cross-iteration synchronization, so DOACROSS(d) cannot yet be run
/// pipelined — it is reported, not scheduled).
std::string legal_schedules_string(const StaticVerdict& verdict);

/// Number of declared regions (bench/tests).
std::size_t num_declared();

/// Drop every declaration (tests; process-global state).
void clear_declarations();

}  // namespace llp::analyze
