#include "analyze/static/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>

namespace llp::analyze {

namespace {

struct SignatureStore {
  std::mutex mu;
  // std::map: stable iteration order gives a deterministic table, and
  // heterogeneous lookup avoids a temporary string on the hot query path.
  std::map<std::string, AffineSignature, std::less<>> signatures;
};

SignatureStore& store() {
  static SignatureStore* s = new SignatureStore();  // leaked: outlives exit
  return *s;
}

}  // namespace

void declare_access(std::string_view region, AffineSignature signature) {
  SignatureStore& s = store();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.signatures.find(region);
  if (it == s.signatures.end()) {
    s.signatures.emplace(std::string(region), std::move(signature));
  } else {
    it->second = std::move(signature);
  }
}

bool declare_access_if_absent(std::string_view region,
                              AffineSignature signature) {
  SignatureStore& s = store();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.signatures.find(region) != s.signatures.end()) return false;
  s.signatures.emplace(std::string(region), std::move(signature));
  return true;
}

bool find_signature(std::string_view region, AffineSignature* out) {
  SignatureStore& s = store();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.signatures.find(region);
  if (it == s.signatures.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

StaticLegality static_legality(std::string_view region, std::int64_t trips) {
  AffineSignature sig;
  if (!find_signature(region, &sig)) return StaticLegality{};
  StaticLegality legality;
  legality.declared = true;
  // A declared concrete trip count wins; a symbolic declaration picks up
  // the caller's observed trips so Banerjee gets a real domain bound.
  if (sig.trips == kUnknownTrips && trips >= 0) sig.trips = trips;
  legality.verdict = classify(sig);
  return legality;
}

std::vector<ClassifiedRegion> classification_table() {
  std::vector<ClassifiedRegion> table;
  SignatureStore& s = store();
  std::lock_guard<std::mutex> lock(s.mu);
  table.reserve(s.signatures.size());
  for (const auto& [name, sig] : s.signatures) {
    ClassifiedRegion row;
    row.region = name;
    row.signature = sig;
    row.verdict = classify(sig);
    table.push_back(std::move(row));
  }
  return table;
}

std::string legal_schedules_string(const StaticVerdict& verdict) {
  if (verdict.parallel_ok()) {
    return "static_block static_chunked dynamic guided";
  }
  return "serial only";
}

std::size_t num_declared() {
  SignatureStore& s = store();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.signatures.size();
}

void clear_declarations() {
  SignatureStore& s = store();
  std::lock_guard<std::mutex> lock(s.mu);
  s.signatures.clear();
}

}  // namespace llp::analyze
