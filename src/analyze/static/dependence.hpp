// Static dependence engine over the affine IR: GCD + Banerjee tests,
// direction/distance vectors, DOALL / DOACROSS(d) / SERIAL classification.
//
// For an ordered pair of accesses A (source, iteration i) and B (sink,
// iteration i' = i + d) on the same array, a dependence at distance d != 0
// requires integers in the declared footprints with
//
//   stride_A*i + v_A  ==  stride_B*i' + v_B,
//
// where v_X ranges over X's per-iteration footprint (offset + inner dims +
// span). The engine works on the difference v = v_A - v_B, whose achievable
// values it over-approximates by an interval [lo, hi] plus a residue class
// v === offset_A - offset_B (mod g) — g the gcd of both footprints'
// variation strides. Over-approximating v keeps the engine SOUND in the
// direction that matters: it may report a dependence that cannot happen,
// but it never reports independence when a dependence exists. The
// cross-validation oracle against the dynamic checker (registry.hpp)
// enforces exactly that contract at runtime.
//
//   * GCD test — the residue class admits no solution of the dependence
//     equation (classic: gcd of the coefficients does not divide the
//     constant term).
//   * Banerjee test — the extreme values of the dependence equation over
//     the iteration domain [0, trips) exclude every admissible v (range
//     test; with symbolic trips the domain is unbounded and the test can
//     only exclude via the v-interval itself).
//
// Equal parallel strides give an exact integer distance range; unequal
// strides with a surviving dependence give an unbounded distance, which
// classifies the region SERIAL (no pipelining schedule is legal).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/static/affine.hpp"

namespace llp::analyze {

/// Which test proved an access pair independent.
enum class DepTest : std::uint8_t { kNone, kGcd, kBanerjee };
const char* dep_test_name(DepTest test) noexcept;

enum class LoopClass : std::uint8_t { kDoall, kDoacross, kSerial };
const char* loop_class_name(LoopClass cls) noexcept;

/// The set of dependence directions a pair admits in the parallel dim:
/// '<' (sink at a later iteration), '=' (same iteration), '>' (earlier).
struct DirectionSet {
  bool lt = false;
  bool eq = false;
  bool gt = false;

  /// "(<)", "(<=)", "(=)", "(<>)", "(*)" — "()" when empty. "(<=)" means
  /// {<, =}; all three print as "(*)".
  std::string to_string() const;
  /// Inverse of to_string (accepts any order of '<', '=', '>', or '*').
  /// Returns false on malformed input.
  static bool parse(std::string_view text, DirectionSet* out);

  bool operator==(const DirectionSet& o) const noexcept {
    return lt == o.lt && eq == o.eq && gt == o.gt;
  }
};

/// Dependence analysis of one ordered access pair.
struct PairDep {
  bool carried = false;  ///< a loop-carried (d != 0) dependence may exist
  bool intra = false;    ///< a same-iteration (d == 0) overlap may exist
  /// Valid when carried: is the distance set finite with known bounds?
  bool bounded = false;
  std::int64_t min_distance = 0;  ///< carried && bounded: smallest |d|
  std::int64_t max_distance = 0;  ///< carried && bounded: largest |d|
  DirectionSet direction;
  DepTest proof = DepTest::kNone;  ///< valid when !carried && !intra
};

/// Analyze source A against sink B over a parallel loop of `trips`
/// iterations (kUnknownTrips = symbolic bound, conservative fallback).
/// The pair is assumed same-array with at least one write; callers filter.
PairDep analyze_pair(const AffineAccess& a, const AffineAccess& b,
                     std::int64_t trips);

/// One surviving (carried) dependence, with the evidence llp_check prints.
struct DepWitness {
  std::size_t access_a = 0;  ///< indices into AffineSignature::accesses
  std::size_t access_b = 0;
  std::string array;
  PairDep dep;
  std::string detail;  ///< "W a[2*i] vs W a[2*i + 2]: distance 1, dir (<)"
};

/// The classification of one declared region.
struct StaticVerdict {
  LoopClass cls = LoopClass::kDoall;
  /// kDoacross: the smallest carried distance across all witnesses — the
  /// minimum pipelining lag a legal DOACROSS schedule must respect.
  std::int64_t min_distance = 0;
  std::vector<DepWitness> witnesses;  ///< every surviving carried pair
  std::size_t pairs_checked = 0;
  std::size_t gcd_independent = 0;       ///< pairs the GCD test cleared
  std::size_t banerjee_independent = 0;  ///< pairs Banerjee cleared

  bool parallel_ok() const noexcept { return cls == LoopClass::kDoall; }
  /// "DOALL" | "DOACROSS(d=1)" | "SERIAL".
  std::string class_string() const;
};

/// Classify a region from its declared signature: every same-array pair
/// with at least one write (including an access against itself — a span
/// or inner dim can collide with the next iteration) is run through
/// analyze_pair and the surviving carried dependences decide the class.
StaticVerdict classify(const AffineSignature& sig);

}  // namespace llp::analyze
