// Affine access-pattern IR — the static half of the loop-safety analyzer.
//
// PR 5's dynamic checker (dep_check.hpp) proves "this execution raced"
// after paying to run the loop. The static pass works the other way
// around: a parallel region *declares*, at registration time, the affine
// shape of every shared-array access its body will make as a function of
// the parallel index i, and the dependence engine (dependence.hpp) decides
// DOALL / DOACROSS(d) / SERIAL before the loop ever runs — the same
// front-loaded legality question the paper's authors answered by hand for
// each C$doacross directive (§4).
//
// The IR deliberately matches what the instrumented f3d bodies actually
// log: one parallel dimension (the outer doacross index), an optional
// contiguous span per access point (a plane slab, a stencil window), and
// optional sequential inner dimensions with their own strides. The
// footprint of access A at iteration i is
//
//   { offset + stride*i + sum_k inner[k].stride * j_k + e :
//     0 <= j_k < inner[k].extent, 0 <= e < span }
//
// in the same caller-chosen coordinate space the dynamic logger uses
// (element indices for rhs/update, outer-task coordinates for sweeps —
// see core/access_hook.hpp). Declaring in the logged coordinate space is
// what makes the two analyses cross-validatable: a region the static pass
// classifies DOALL must never produce a dynamic race finding, and the
// analyzer treats any such contradiction as a hard failure of itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/access_hook.hpp"

namespace llp::analyze {

/// Trip count not known at declaration time; the dependence engine falls
/// back to conservative (unbounded-domain) Banerjee limits.
inline constexpr std::int64_t kUnknownTrips = -1;

/// One sequential (non-parallel) loop dimension inside the body:
/// contributes stride * j for j in [0, extent). Extent <= 0 means the
/// dimension's extent is unknown; the engine treats it as unbounded.
struct AffineTerm {
  std::int64_t stride = 0;
  std::int64_t extent = 1;
};

/// One declared access: array name, read/write, and the affine footprint
/// per parallel iteration (see file comment for the exact element set).
struct AffineAccess {
  std::string array;
  AccessKind kind = AccessKind::kRead;
  std::int64_t offset = 0;  ///< element index at i = 0, all inner j = 0
  std::int64_t stride = 0;  ///< coefficient of the parallel index i
  std::int64_t span = 1;    ///< contiguous [f, f+span) per access point
  std::vector<AffineTerm> inner;

  bool is_write() const noexcept { return kind == AccessKind::kWrite; }

  /// Smallest / largest displacement the inner dims + span can add to
  /// offset + stride*i (inclusive bounds of the per-iteration footprint,
  /// relative to stride*i). Unknown inner extents saturate the bound.
  std::int64_t footprint_min() const noexcept;
  std::int64_t footprint_max() const noexcept;

  /// gcd of every non-parallel coefficient that can vary the element index
  /// within one iteration (inner strides; 1 when span > 1). 0 when the
  /// footprint is a single fixed element per iteration.
  std::int64_t variation_gcd() const noexcept;

  /// "W rhs[4096*i + 1024 ..+4096)" — one line for tables and witnesses.
  std::string to_string() const;

  // Fluent builders keep call sites one expression per access.
  static AffineAccess read(std::string array, std::int64_t stride,
                           std::int64_t offset = 0, std::int64_t span = 1) {
    return AffineAccess{std::move(array), AccessKind::kRead, offset, stride,
                        span, {}};
  }
  static AffineAccess write(std::string array, std::int64_t stride,
                            std::int64_t offset = 0, std::int64_t span = 1) {
    return AffineAccess{std::move(array), AccessKind::kWrite, offset, stride,
                        span, {}};
  }
  AffineAccess& with_inner(std::int64_t stride_, std::int64_t extent_) {
    inner.push_back(AffineTerm{stride_, extent_});
    return *this;
  }
};

/// The declared access shape of one parallel region.
struct AffineSignature {
  /// Parallel-loop trip count as declared (kUnknownTrips = symbolic; the
  /// engine then proves independence for *all* trip counts or not at all).
  std::int64_t trips = kUnknownTrips;
  std::vector<AffineAccess> accesses;
};

/// Overflow-safe helpers shared by the dependence engine and tests.
std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept;
std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept;
std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept;

}  // namespace llp::analyze
