#include "analyze/static/affine.hpp"

#include <limits>

#include "util/format.hpp"

namespace llp::analyze {

namespace {
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
}  // namespace

std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
  if (a > 0 && b > kMax - a) return kMax;
  if (a < 0 && b < kMin - a) return kMin;
  return a + b;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > 0 ? (b > 0 ? a > kMax / b : b < kMin / a)
            : (b > 0 ? a < kMin / b : a != 0 && b < kMax / a)) {
    return (a > 0) == (b > 0) ? kMax : kMin;
  }
  return a * b;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  if (a < 0) a = a == kMin ? kMax : -a;
  if (b < 0) b = b == kMin ? kMax : -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t AffineAccess::footprint_min() const noexcept {
  std::int64_t lo = 0;
  for (const AffineTerm& t : inner) {
    if (t.stride >= 0) continue;
    // Negative stride: most negative at the largest j. Unknown extent
    // saturates to the unbounded side.
    lo = t.extent <= 0 ? kMin
                       : sat_add(lo, sat_mul(t.stride, t.extent - 1));
  }
  return lo;
}

std::int64_t AffineAccess::footprint_max() const noexcept {
  std::int64_t hi = span >= 1 ? span - 1 : 0;
  for (const AffineTerm& t : inner) {
    if (t.stride <= 0) continue;
    hi = t.extent <= 0 ? kMax
                       : sat_add(hi, sat_mul(t.stride, t.extent - 1));
  }
  return hi;
}

std::int64_t AffineAccess::variation_gcd() const noexcept {
  std::int64_t g = span > 1 ? 1 : 0;
  for (const AffineTerm& t : inner) {
    if (t.extent == 1) continue;  // a one-trip dim adds nothing
    g = gcd64(g, t.stride);
  }
  return g;
}

std::string AffineAccess::to_string() const {
  std::string s = strfmt("%s %s[", is_write() ? "W" : "R", array.c_str());
  if (stride != 0) {
    s += strfmt("%lld*i", static_cast<long long>(stride));
    if (offset != 0) {
      s += strfmt(" %s %lld", offset > 0 ? "+" : "-",
                  static_cast<long long>(offset > 0 ? offset : -offset));
    }
  } else {
    s += strfmt("%lld", static_cast<long long>(offset));
  }
  for (const AffineTerm& t : inner) {
    if (t.extent <= 0) {
      s += strfmt(" + %lld*j?", static_cast<long long>(t.stride));
    } else {
      s += strfmt(" + %lld*j<%lld", static_cast<long long>(t.stride),
                  static_cast<long long>(t.extent));
    }
  }
  if (span > 1) s += strfmt(" ..+%lld", static_cast<long long>(span));
  s += ']';
  return s;
}

}  // namespace llp::analyze
