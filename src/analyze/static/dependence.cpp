#include "analyze/static/dependence.hpp"

#include <algorithm>
#include <limits>

#include "util/format.hpp"

namespace llp::analyze {

namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

std::int64_t sat_neg(std::int64_t a) noexcept {
  if (a == kMin) return kMax;
  if (a == kMax) return kMin;
  return -a;
}

std::int64_t sat_sub(std::int64_t a, std::int64_t b) noexcept {
  return sat_add(a, sat_neg(b));
}

// Floor/ceil division for b != 0 (C++ '/' truncates toward zero).
std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

// a normalized into [0, m) for m > 0.
std::int64_t mod_norm(std::int64_t a, std::int64_t m) noexcept {
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

std::int64_t mul_mod(std::int64_t a, std::int64_t b,
                     std::int64_t m) noexcept {
  return static_cast<std::int64_t>(
      static_cast<__int128>(a) * static_cast<__int128>(b) % m);
}

// Inverse of a modulo m (gcd(a, m) == 1, m >= 1), via extended Euclid.
std::int64_t mod_inverse(std::int64_t a, std::int64_t m) noexcept {
  std::int64_t r0 = m, r1 = mod_norm(a, m), t0 = 0, t1 = 1;
  while (r1 != 0) {
    const std::int64_t q = r0 / r1;
    const std::int64_t r2 = r0 - q * r1;
    const std::int64_t t2 = t0 - q * t1;
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  return mod_norm(t0, m);
}

// Smallest d in [lo, hi] with d === d0 (mod m); false when none.
bool first_in(std::int64_t lo, std::int64_t hi, std::int64_t d0,
              std::int64_t m, std::int64_t* out) noexcept {
  if (lo > hi) return false;
  const std::int64_t d = sat_add(lo, mod_norm(d0 - lo, m));
  if (d > hi) return false;
  *out = d;
  return true;
}

// Largest d in [lo, hi] with d === d0 (mod m); false when none.
bool last_in(std::int64_t lo, std::int64_t hi, std::int64_t d0,
             std::int64_t m, std::int64_t* out) noexcept {
  if (lo > hi) return false;
  const std::int64_t d = sat_sub(hi, mod_norm(hi - d0, m));
  if (d < lo) return false;
  *out = d;
  return true;
}

bool trips_known(std::int64_t trips) noexcept { return trips >= 0; }

}  // namespace

const char* dep_test_name(DepTest test) noexcept {
  switch (test) {
    case DepTest::kNone: return "none";
    case DepTest::kGcd: return "gcd";
    case DepTest::kBanerjee: return "banerjee";
  }
  return "?";
}

const char* loop_class_name(LoopClass cls) noexcept {
  switch (cls) {
    case LoopClass::kDoall: return "DOALL";
    case LoopClass::kDoacross: return "DOACROSS";
    case LoopClass::kSerial: return "SERIAL";
  }
  return "?";
}

std::string DirectionSet::to_string() const {
  if (lt && eq && gt) return "(*)";
  std::string s = "(";
  if (lt) s += '<';
  if (eq) s += '=';
  if (gt) s += '>';
  s += ')';
  return s;
}

bool DirectionSet::parse(std::string_view text, DirectionSet* out) {
  if (text.size() < 2 || text.front() != '(' || text.back() != ')') {
    return false;
  }
  DirectionSet d;
  for (const char ch : text.substr(1, text.size() - 2)) {
    switch (ch) {
      case '<':
        if (d.lt) return false;
        d.lt = true;
        break;
      case '=':
        if (d.eq) return false;
        d.eq = true;
        break;
      case '>':
        if (d.gt) return false;
        d.gt = true;
        break;
      case '*':
        if (d.lt || d.eq || d.gt) return false;
        d.lt = d.eq = d.gt = true;
        break;
      default:
        return false;
    }
  }
  *out = d;
  return true;
}

PairDep analyze_pair(const AffineAccess& a, const AffineAccess& b,
                     std::int64_t trips) {
  PairDep out;
  // A loop of 0 or 1 iterations cannot carry a dependence across
  // iterations (the Banerjee domain bound, degenerate form).
  if (trips == 0 || trips == 1) {
    out.proof = DepTest::kBanerjee;
    return out;
  }

  const std::int64_t sa = a.stride, sb = b.stride;
  const std::int64_t fmin_a = a.footprint_min(), fmax_a = a.footprint_max();
  const std::int64_t fmin_b = b.footprint_min(), fmax_b = b.footprint_max();
  const bool v_unbounded = fmin_a == kMin || fmax_a == kMax ||
                           fmin_b == kMin || fmax_b == kMax;
  // Achievable v = v_a - v_b: interval [lo_v, hi_v] intersected with the
  // residue class v === c (mod g); g == 0 means v is exactly c.
  const std::int64_t lo_v =
      sat_sub(sat_add(a.offset, fmin_a), sat_add(b.offset, fmax_b));
  const std::int64_t hi_v =
      sat_sub(sat_add(a.offset, fmax_a), sat_add(b.offset, fmin_b));
  const std::int64_t g = gcd64(a.variation_gcd(), b.variation_gcd());
  const std::int64_t c = sat_sub(a.offset, b.offset);

  if (sa == sb) {
    const std::int64_t s = sa;
    if (s == 0) {
      // Iteration-invariant footprints: every iteration touches the same
      // elements, so any overlap recurs at every distance.
      if (g == 0 ? c != 0 : mod_norm(c, g) != 0) {
        out.proof = DepTest::kGcd;
        return out;
      }
      if (!v_unbounded && (lo_v > 0 || hi_v < 0)) {
        out.proof = DepTest::kBanerjee;
        return out;
      }
      out.carried = true;
      out.intra = true;
      out.bounded = trips_known(trips);
      out.min_distance = 1;
      out.max_distance = out.bounded ? trips - 1 : 0;
      out.direction = DirectionSet{true, true, true};
      return out;
    }

    // Equal nonzero strides: the dependence equation collapses to
    // s*d == v, giving an exact integer distance range.
    if (g == 0) {
      if (c % s != 0) {
        out.proof = DepTest::kGcd;
        return out;
      }
      const std::int64_t d = c / s;
      if (d == 0) {
        out.intra = true;  // same-iteration only: not loop-carried
        return out;
      }
      if (trips_known(trips) && (d >= trips || d <= -trips)) {
        out.proof = DepTest::kBanerjee;
        return out;
      }
      out.carried = true;
      out.bounded = true;
      out.min_distance = out.max_distance = d < 0 ? -d : d;
      out.direction.lt = d > 0;
      out.direction.gt = d < 0;
      return out;
    }

    // g > 0: s*d must hit the residue class c (mod g).
    const std::int64_t e = gcd64(s, g);
    if (mod_norm(c, e) != 0) {
      out.proof = DepTest::kGcd;
      return out;
    }
    const std::int64_t m = g / e;  // d === d0 (mod m)
    std::int64_t d0 = 0;
    if (m > 1) {
      d0 = mul_mod(mod_inverse(mod_norm(s / e, m), m),
                   mod_norm(floor_div(c, e), m), m);
    }
    std::int64_t dlo, dhi;
    if (v_unbounded) {
      if (!trips_known(trips)) {
        out.carried = true;
        out.bounded = false;
        out.intra = mod_norm(-d0, m) == 0;
        out.direction = DirectionSet{true, out.intra, true};
        return out;
      }
      dlo = -(trips - 1);
      dhi = trips - 1;
    } else {
      dlo = s > 0 ? ceil_div(lo_v, s) : ceil_div(hi_v, s);
      dhi = s > 0 ? floor_div(hi_v, s) : floor_div(lo_v, s);
      if (trips_known(trips)) {
        dlo = std::max(dlo, -(trips - 1));
        dhi = std::min(dhi, trips - 1);
      }
    }
    if (dlo > dhi) {
      out.proof = DepTest::kBanerjee;
      return out;
    }
    out.intra = dlo <= 0 && 0 <= dhi && mod_norm(-d0, m) == 0;
    std::int64_t dpos = 0, dneg = 0;
    const bool has_pos =
        first_in(std::max<std::int64_t>(dlo, 1), dhi, d0, m, &dpos);
    const bool has_neg =
        last_in(dlo, std::min<std::int64_t>(dhi, -1), d0, m, &dneg);
    if (!has_pos && !has_neg) {
      if (!out.intra) out.proof = DepTest::kBanerjee;
      return out;
    }
    out.carried = true;
    out.bounded = true;
    out.direction = DirectionSet{has_pos, out.intra, has_neg};
    std::int64_t mind = kMax, maxd = 0;
    if (has_pos) {
      std::int64_t pmax = dpos;
      last_in(std::max<std::int64_t>(dlo, 1), dhi, d0, m, &pmax);
      mind = std::min(mind, dpos);
      maxd = std::max(maxd, pmax);
    }
    if (has_neg) {
      std::int64_t nmin = dneg;
      first_in(dlo, std::min<std::int64_t>(dhi, -1), d0, m, &nmin);
      mind = std::min(mind, -dneg);
      maxd = std::max(maxd, -nmin);
    }
    out.min_distance = mind;
    out.max_distance = maxd;
    return out;
  }

  // Unequal parallel strides: sa*i - sb*i' == -v. GCD over every
  // coefficient of the full Diophantine equation first.
  const std::int64_t big_g = gcd64(gcd64(sa, sb), g);  // >= 1: sa != sb
  if (mod_norm(c, big_g) != 0) {
    out.proof = DepTest::kGcd;
    return out;
  }
  if (trips_known(trips) && !v_unbounded) {
    // Banerjee extreme-value bound of h = sa*i - sb*i' over the domain.
    const std::int64_t t1 = trips - 1;
    const std::int64_t hmin = sat_sub(sa < 0 ? sat_mul(sa, t1) : 0,
                                      sb > 0 ? sat_mul(sb, t1) : 0);
    const std::int64_t hmax = sat_sub(sa > 0 ? sat_mul(sa, t1) : 0,
                                      sb < 0 ? sat_mul(sb, t1) : 0);
    if (hmax < sat_neg(hi_v) || hmin > sat_neg(lo_v)) {
      out.proof = DepTest::kBanerjee;
      return out;
    }
  }
  // A dependence may exist at an iteration-dependent distance: no single
  // pipelining lag covers it, so the pair is unbounded (SERIAL-grade).
  out.carried = true;
  out.intra = true;
  out.bounded = false;
  out.direction = DirectionSet{true, true, true};
  return out;
}

std::string StaticVerdict::class_string() const {
  if (cls == LoopClass::kDoacross) {
    return strfmt("DOACROSS(d=%lld)", static_cast<long long>(min_distance));
  }
  return loop_class_name(cls);
}

StaticVerdict classify(const AffineSignature& sig) {
  StaticVerdict verdict;
  const std::vector<AffineAccess>& acc = sig.accesses;
  std::int64_t min_carried = kMax;
  bool any_unbounded = false;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    for (std::size_t j = i; j < acc.size(); ++j) {
      if (acc[i].array != acc[j].array) continue;
      if (!acc[i].is_write() && !acc[j].is_write()) continue;
      ++verdict.pairs_checked;
      const PairDep dep = analyze_pair(acc[i], acc[j], sig.trips);
      if (!dep.carried) {
        if (dep.proof == DepTest::kGcd) ++verdict.gcd_independent;
        if (dep.proof == DepTest::kBanerjee) ++verdict.banerjee_independent;
        continue;
      }
      DepWitness w;
      w.access_a = i;
      w.access_b = j;
      w.array = acc[i].array;
      w.dep = dep;
      if (dep.bounded) {
        w.detail = strfmt(
            "%s vs %s: distance [%lld..%lld], dir %s",
            acc[i].to_string().c_str(), acc[j].to_string().c_str(),
            static_cast<long long>(dep.min_distance),
            static_cast<long long>(dep.max_distance),
            dep.direction.to_string().c_str());
        min_carried = std::min(min_carried, dep.min_distance);
      } else {
        w.detail = strfmt("%s vs %s: unbounded distance, dir %s",
                          acc[i].to_string().c_str(),
                          acc[j].to_string().c_str(),
                          dep.direction.to_string().c_str());
        any_unbounded = true;
      }
      verdict.witnesses.push_back(std::move(w));
    }
  }
  if (verdict.witnesses.empty()) {
    verdict.cls = LoopClass::kDoall;
  } else if (any_unbounded) {
    verdict.cls = LoopClass::kSerial;
  } else {
    verdict.cls = LoopClass::kDoacross;
    verdict.min_distance = min_carried;
  }
  return verdict;
}

}  // namespace llp::analyze
