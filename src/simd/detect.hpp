// Width detection for the simd layer: what was compiled in (per
// translation unit) and what the CPU running us actually supports.
//
// Kernels are dispatched on the AND of the two: an AVX2 kernel exists only
// in translation units built with -mavx2 -mfma, and is entered only when
// __builtin_cpu_supports confirms the host executes it. Everything else
// falls back to the scalar pack reference, so a binary built with the
// AVX2 kernels still runs correctly on a pre-AVX2 (or non-x86) host.
#pragma once

namespace simd {

/// Was THIS translation unit compiled with the AVX2+FMA pack enabled?
/// (False everywhere under -DLLP_SIMD_FORCE_SCALAR.)
constexpr bool compiled_with_avx2() {
#if defined(LLP_SIMD_PACK_AVX2) || \
    (defined(__AVX2__) && defined(__FMA__) && !defined(LLP_SIMD_FORCE_SCALAR))
  return true;
#else
  return false;
#endif
}

/// Does the host CPU execute AVX2 + FMA? Cached after the first call;
/// always false on non-x86 targets and under LLP_SIMD_FORCE_SCALAR.
inline bool runtime_has_avx2() {
#if defined(LLP_SIMD_FORCE_SCALAR)
  return false;
#elif defined(__x86_64__) || defined(__i386__)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

/// Lanes of double the active (compiled AND runtime-supported) vector path
/// processes per instruction in this translation unit; 1 on the scalar
/// fallback. Purely informational — kernels pick their own batch width.
inline int active_double_width() {
  return compiled_with_avx2() && runtime_has_avx2() ? 4 : 1;
}

}  // namespace simd
