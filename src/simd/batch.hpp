// Interleave/deinterleave transposes for lane-batched kernels.
//
// A recurrence along a line cannot vectorize, but W independent lines can:
// transpose W pencils into SoA lane layout (element i of pencil p at
// out[i*W + p]), run the recurrence once with every arithmetic op a
// W-wide vector op, and transpose back. These helpers are that transpose,
// including the tail policy for a final batch of count < W pencils: the
// missing lanes replicate the last real pencil, so the batched kernel
// always runs a full W lanes on well-conditioned data and the results of
// the padding lanes are simply never read back.
#pragma once

#include <cstddef>

namespace simd {

/// Gather `count` (1 <= count <= W) source sequences of length n into lane
/// layout: out[i*W + p] = srcs[p][i * src_stride]. Lanes p >= count are
/// filled by replicating pencil count-1 (see header comment).
template <int W, class T>
inline void interleave(const T* const* srcs, int count, int n, T* out,
                       int src_stride = 1) {
  for (int i = 0; i < n; ++i) {
    T* row = out + static_cast<std::size_t>(i) * W;
    for (int p = 0; p < count; ++p) {
      row[p] = srcs[p][static_cast<std::size_t>(i) * src_stride];
    }
    for (int p = count; p < W; ++p) row[p] = row[count - 1];
  }
}

/// Scatter lane layout back: dsts[p][i * dst_stride] = in[i*W + p] for
/// p < count. Padding lanes (p >= count) are discarded — the inverse of
/// interleave's replication, which makes the round trip exact at any
/// count, odd tails included.
template <int W, class T>
inline void deinterleave(const T* in, int count, int n, T* const* dsts,
                         int dst_stride = 1) {
  for (int i = 0; i < n; ++i) {
    const T* row = in + static_cast<std::size_t>(i) * W;
    for (int p = 0; p < count; ++p) {
      dsts[p][static_cast<std::size_t>(i) * dst_stride] = row[p];
    }
  }
}

}  // namespace simd
