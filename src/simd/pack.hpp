// simd::pack — a small portable vector abstraction.
//
// A pack<T, W, Arch> is W lanes of T operated on in lockstep. The primary
// template is plain scalar lane arrays, so every pack program compiles (and
// is correct) on any target; the x86 specializations map the same surface
// onto real vector instructions. Which implementation a translation unit
// sees is selected per-TU by the architecture tag:
//
//   pack<double, 4>                    // arch::Auto: AVX2 when this TU is
//                                      // compiled with -mavx2 -mfma,
//                                      // scalar lanes otherwise
//   pack<double, 4, arch::Scalar>      // always the scalar reference
//
// The tag is a template parameter, not an #ifdef inside one class, so a
// binary mixing AVX2-compiled and generic translation units never violates
// the one-definition rule: pack<double,4,arch::Avx2> and
// pack<double,4,arch::Scalar> are distinct types with distinct symbols.
//
// Rounding contract: lane-wise +, -, *, /, min, max, abs and blends are
// IEEE-754 operations identical to their scalar counterparts on every
// implementation. fma()/fnma() are the documented exception — the AVX2
// implementation uses true fused multiply-adds (one rounding), while the
// scalar reference rounds the product and the sum separately. Kernels that
// use fma() therefore match their scalar references to a relative error of
// O(eps) per operation, not bitwise; callers that need bitwise parity with
// scalar code must stick to the plain operators.
//
// Building with -DLLP_SIMD_FORCE_SCALAR (CMake option of the same name)
// pins arch::Auto to Scalar everywhere regardless of compiler flags — the
// forced-fallback configuration CI builds to prove the scalar path stays
// correct and warning-clean.
#pragma once

#include <cmath>
#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__) && !defined(LLP_SIMD_FORCE_SCALAR)
#define LLP_SIMD_PACK_AVX2 1
#include <immintrin.h>
#endif

namespace simd {

namespace arch {

/// Scalar lane arrays; the portable reference implementation.
struct Scalar {};
/// 256-bit AVX2 + FMA (4 doubles per pack).
struct Avx2 {};

/// What this translation unit's pack<..., Auto> resolves to.
#if defined(LLP_SIMD_PACK_AVX2)
using Auto = Avx2;
#else
using Auto = Scalar;
#endif

}  // namespace arch

/// Primary template: W scalar lanes. Works for any arithmetic T and any
/// W >= 1; the compiler is free to (and with vector ISAs enabled, does)
/// auto-vectorize the lane loops, but correctness never depends on it.
template <class T, int W, class A = arch::Auto>
struct pack {
  static_assert(W >= 1, "pack width must be positive");
  static constexpr int width = W;
  using value_type = T;

  T lane[W];

  /// Lane-wise comparison result; consumed by blend().
  struct mask {
    bool lane[W];
  };

  static pack load(const T* p) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  static pack broadcast(T x) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  static pack zero() { return broadcast(T(0)); }
  void store(T* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  T operator[](int i) const { return lane[i]; }

  friend pack operator+(pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend pack operator-(pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend pack operator*(pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend pack operator/(pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }

  /// a*b + c. Scalar reference rounds twice (see header comment); vector
  /// implementations fuse.
  static pack fma(pack a, pack b, pack c) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i] + c.lane[i];
    return r;
  }
  /// c - a*b (the Thomas-elimination shape).
  static pack fnma(pack a, pack b, pack c) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = c.lane[i] - a.lane[i] * b.lane[i];
    return r;
  }

  static pack min(pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return r;
  }
  static pack max(pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return r;
  }
  static pack abs(pack a) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = std::abs(a.lane[i]);
    return r;
  }

  friend mask operator<(pack a, pack b) {
    mask m;
    for (int i = 0; i < W; ++i) m.lane[i] = a.lane[i] < b.lane[i];
    return m;
  }
  friend mask operator<=(pack a, pack b) {
    mask m;
    for (int i = 0; i < W; ++i) m.lane[i] = a.lane[i] <= b.lane[i];
    return m;
  }

  /// Lane-wise select: m ? a : b.
  static pack blend(mask m, pack a, pack b) {
    pack r;
    for (int i = 0; i < W; ++i) r.lane[i] = m.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }

  /// Horizontal sum in a fixed tree order — (l0+l2) + (l1+l3) at W=4 — so
  /// every implementation (scalar, AVX2) reduces identically and a result
  /// computed through pack is bit-stable across build configurations.
  T sum() const {
    if constexpr (W == 1) {
      return lane[0];
    } else {
      T acc[W];
      for (int i = 0; i < W; ++i) acc[i] = lane[i];
      int half = W;
      while (half > 1) {
        const int next = (half + 1) / 2;
        for (int i = 0; i + next < half; ++i) acc[i] = acc[i] + acc[i + next];
        half = next;
      }
      return acc[0];
    }
  }
};

#if defined(LLP_SIMD_PACK_AVX2)

/// AVX2 + FMA: 4 doubles per pack. Unaligned loads/stores throughout —
/// the penalty on any AVX2-era core is negligible and callers never have
/// to reason about 32-byte alignment of interior slices.
template <>
struct pack<double, 4, arch::Avx2> {
  static constexpr int width = 4;
  using value_type = double;

  __m256d v;

  struct mask {
    __m256d m;  // all-ones lanes where true
  };

  static pack load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static pack broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static pack zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  double operator[](int i) const {
    double tmp[4];
    _mm256_storeu_pd(tmp, v);
    return tmp[i];
  }

  friend pack operator+(pack a, pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm256_div_pd(a.v, b.v)}; }

  static pack fma(pack a, pack b, pack c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  static pack fnma(pack a, pack b, pack c) {
    return {_mm256_fnmadd_pd(a.v, b.v, c.v)};
  }

  static pack min(pack a, pack b) { return {_mm256_min_pd(a.v, b.v)}; }
  static pack max(pack a, pack b) { return {_mm256_max_pd(a.v, b.v)}; }
  static pack abs(pack a) {
    const __m256d sign = _mm256_set1_pd(-0.0);
    return {_mm256_andnot_pd(sign, a.v)};
  }

  friend mask operator<(pack a, pack b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  friend mask operator<=(pack a, pack b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }

  static pack blend(mask m, pack a, pack b) {
    return {_mm256_blendv_pd(b.v, a.v, m.m)};
  }

  double sum() const {
    // Same fixed tree order as the scalar reference: (l0+l2) + (l1+l3).
    double tmp[4];
    _mm256_storeu_pd(tmp, v);
    return (tmp[0] + tmp[2]) + (tmp[1] + tmp[3]);
  }
};

#endif  // LLP_SIMD_PACK_AVX2

}  // namespace simd
