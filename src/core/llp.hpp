// Umbrella header for the loop-level parallelism runtime.
#pragma once

#include "core/cancel.hpp"      // IWYU pragma: export
#include "core/doacross.hpp"    // IWYU pragma: export
#include "core/fault_hook.hpp"  // IWYU pragma: export
#include "core/parallel_for.hpp"  // IWYU pragma: export
#include "core/region.hpp"      // IWYU pragma: export
#include "core/runtime.hpp"     // IWYU pragma: export
#include "core/schedule.hpp"    // IWYU pragma: export
#include "core/thread_pool.hpp" // IWYU pragma: export
