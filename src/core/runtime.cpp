#include "core/runtime.hpp"

#include <cstdlib>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace llp {

namespace {
// Upper bound on cached transient pools. Tuning explores a small ladder of
// thread counts, so a handful of sizes covers the steady state.
constexpr std::size_t kMaxTransientPools = 4;
}  // namespace

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::Runtime() {
  int n = 0;
  if (const char* env = std::getenv("LLP_NUM_THREADS")) {
    n = std::atoi(env);
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = n > 0 ? n : 1;
  if (const char* env = std::getenv("LLP_TUNE")) {
    auto_tune_ = env[0] != '\0' && env[0] != '0';
  }
  if (const char* env = std::getenv("LLP_WATCHDOG_MS")) {
    const double ms = std::atof(env);
    if (ms > 0.0) watchdog_seconds_ = ms / 1000.0;
  }
}

int Runtime::num_threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void Runtime::set_num_threads(int n) {
  LLP_REQUIRE(n >= 1, "num_threads must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  if (n != num_threads_) {
    num_threads_ = n;
    pool_.reset();  // rebuilt lazily at the new size
  }
}

ThreadPool& Runtime::pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ && pool_->abandoned()) {
    // A timed-out lane may never return, so the pool cannot run again.
    // Destroying it detaches its workers (the hung lane leaks one thread;
    // the shared state stays alive via shared_ptr) and rebuilding restores
    // a healthy pool — the runtime recovers from a hang.
    pool_.reset();
  }
  if (!pool_ || pool_->size() != num_threads_) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  pool_->set_deadline(watchdog_seconds_);
  return *pool_;
}

std::unique_ptr<ThreadPool> Runtime::acquire_transient_pool(int size) {
  LLP_REQUIRE(size >= 1, "pool size must be >= 1");
  double deadline = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deadline = watchdog_seconds_;
    for (auto& p : transient_pools_) {
      if (p && p->size() == size) {
        auto out = std::move(p);
        p = std::move(transient_pools_.back());
        transient_pools_.pop_back();
        out->set_deadline(deadline);
        return out;
      }
    }
  }
  // Construct outside the lock: spawning workers is slow and must not
  // serialize against unrelated runtime queries.
  auto out = std::make_unique<ThreadPool>(size);
  out->set_deadline(deadline);
  return out;
}

void Runtime::release_transient_pool(std::unique_ptr<ThreadPool> pool) {
  if (!pool) return;
  if (pool->abandoned()) return;  // destroyed: detaches its hung lane
  std::lock_guard<std::mutex> lock(mu_);
  if (transient_pools_.size() < kMaxTransientPools) {
    transient_pools_.push_back(std::move(pool));
  }
  // else: dropped; the unique_ptr joins the workers on destruction.
}

void Runtime::set_tuner(LoopTuner* tuner) {
  std::lock_guard<std::mutex> lock(mu_);
  tuner_ = tuner;
}

LoopTuner* Runtime::tuner() {
  std::lock_guard<std::mutex> lock(mu_);
  return tuner_;
}

bool Runtime::auto_tune_enabled() {
  std::lock_guard<std::mutex> lock(mu_);
  return auto_tune_;
}

void Runtime::set_auto_tune_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  auto_tune_ = on;
}

void Runtime::set_fault_hook(FaultHook* hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = hook;
}

FaultHook* Runtime::fault_hook() {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_hook_;
}

double Runtime::watchdog_seconds() {
  std::lock_guard<std::mutex> lock(mu_);
  return watchdog_seconds_;
}

void Runtime::set_watchdog_seconds(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  watchdog_seconds_ = seconds;
  if (pool_) pool_->set_deadline(seconds);
}

}  // namespace llp
