#include "core/runtime.hpp"

#include <cstdlib>
#include <thread>

#include "util/error.hpp"

namespace llp {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::Runtime() {
  int n = 0;
  if (const char* env = std::getenv("LLP_NUM_THREADS")) {
    n = std::atoi(env);
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = n > 0 ? n : 1;
}

int Runtime::num_threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void Runtime::set_num_threads(int n) {
  LLP_REQUIRE(n >= 1, "num_threads must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  if (n != num_threads_) {
    num_threads_ = n;
    pool_.reset();  // rebuilt lazily at the new size
  }
}

ThreadPool& Runtime::pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pool_ || pool_->size() != num_threads_) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  return *pool_;
}

}  // namespace llp
