#include "core/runtime.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/env.hpp"
#include "util/error.hpp"

namespace llp {

namespace {
// Upper bound on cached transient pools. Tuning explores a small ladder of
// thread counts, so a handful of sizes covers the steady state.
constexpr std::size_t kMaxTransientPools = 4;

const ObserverSnapshot& empty_observers() {
  static const ObserverSnapshot empty =
      std::make_shared<const ObserverList>();
  return empty;
}
}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRegionEnter: return "region_enter";
    case EventKind::kRegionExit: return "region_exit";
    case EventKind::kLaneBegin: return "lane_begin";
    case EventKind::kLaneEnd: return "lane_end";
    case EventKind::kChunkAcquire: return "chunk_acquire";
    case EventKind::kChunkFinish: return "chunk_finish";
    case EventKind::kCancel: return "cancel";
    case EventKind::kFault: return "fault";
    case EventKind::kRollback: return "rollback";
    case EventKind::kCkptWriteBegin: return "ckpt_write_begin";
    case EventKind::kCkptWriteEnd: return "ckpt_write_end";
    case EventKind::kCkptDurable: return "ckpt_durable";
    case EventKind::kStepBegin: return "step_begin";
    case EventKind::kStepEnd: return "step_end";
    case EventKind::kMark: return "mark";
  }
  return "unknown";
}

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::Runtime(int num_threads) : observers_(empty_observers()) {
  int n = num_threads;
  if (n <= 0) n = env::get_int("LLP_NUM_THREADS", 0, 0, 1 << 16);
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = n > 0 ? n : 1;
  auto_tune_ = env::get_flag("LLP_TUNE");
  const double ms = env::get_double("LLP_WATCHDOG_MS", 0.0, 0.0, 1e12);
  if (ms > 0.0) watchdog_seconds_ = ms / 1000.0;
}

Runtime::~Runtime() = default;

int Runtime::num_threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void Runtime::set_num_threads(int n) {
  LLP_REQUIRE(n >= 1, "num_threads must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  if (n != num_threads_) {
    num_threads_ = n;
    pool_.reset();  // rebuilt lazily at the new size
  }
}

ThreadPool& Runtime::pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ && pool_->abandoned()) {
    // A timed-out lane may never return, so the pool cannot run again.
    // Destroying it detaches its workers (the hung lane leaks one thread;
    // the shared state stays alive via shared_ptr) and rebuilding restores
    // a healthy pool — the runtime recovers from a hang.
    pool_.reset();
  }
  if (!pool_ || pool_->size() != num_threads_) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  pool_->set_deadline(watchdog_seconds_);
  return *pool_;
}

std::unique_ptr<ThreadPool> Runtime::acquire_transient_pool(int size) {
  LLP_REQUIRE(size >= 1, "pool size must be >= 1");
  double deadline = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deadline = watchdog_seconds_;
    for (auto& p : transient_pools_) {
      if (p && p->size() == size) {
        auto out = std::move(p);
        p = std::move(transient_pools_.back());
        transient_pools_.pop_back();
        out->set_deadline(deadline);
        return out;
      }
    }
  }
  // Construct outside the lock: spawning workers is slow and must not
  // serialize against unrelated runtime queries.
  auto out = std::make_unique<ThreadPool>(size);
  out->set_deadline(deadline);
  return out;
}

void Runtime::release_transient_pool(std::unique_ptr<ThreadPool> pool) {
  if (!pool) return;
  if (pool->abandoned()) return;  // destroyed: detaches its hung lane
  std::lock_guard<std::mutex> lock(mu_);
  if (transient_pools_.size() < kMaxTransientPools) {
    transient_pools_.push_back(std::move(pool));
  }
  // else: dropped; the unique_ptr joins the workers on destruction.
}

void Runtime::add_observer_locked(RuntimeObserver* observer) {
  if (observer == nullptr) return;
  auto next = std::make_shared<ObserverList>(*observers_);
  if (std::find(next->begin(), next->end(), observer) != next->end()) return;
  next->push_back(observer);
  observers_ = std::move(next);
}

void Runtime::remove_observer_locked(RuntimeObserver* observer) {
  auto next = std::make_shared<ObserverList>(*observers_);
  next->erase(std::remove(next->begin(), next->end(), observer), next->end());
  observers_ = std::move(next);
}

void Runtime::add_observer(RuntimeObserver* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  add_observer_locked(observer);
}

void Runtime::remove_observer(RuntimeObserver* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  remove_observer_locked(observer);
}

ObserverSnapshot Runtime::observers() {
  std::lock_guard<std::mutex> lock(mu_);
  return observers_;
}

void Runtime::emit(Event event) {
  ObserverSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = observers_;
  }
  emit_event(*snap, event);
}

void Runtime::set_tuner(LoopTuner* tuner) {
  std::lock_guard<std::mutex> lock(mu_);
  tuner_adapter_.hook = tuner;
  if (tuner != nullptr) {
    add_observer_locked(&tuner_adapter_);
  } else {
    remove_observer_locked(&tuner_adapter_);
  }
}

LoopTuner* Runtime::tuner() {
  ObserverSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = observers_;
  }
  return find_tuner(*snap);
}

bool Runtime::auto_tune_enabled() {
  std::lock_guard<std::mutex> lock(mu_);
  return auto_tune_;
}

void Runtime::set_auto_tune_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  auto_tune_ = on;
}

void Runtime::set_fault_hook(FaultHook* hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_adapter_.hook = hook;
  if (hook != nullptr) {
    add_observer_locked(&fault_adapter_);
  } else {
    remove_observer_locked(&fault_adapter_);
  }
}

FaultHook* Runtime::fault_hook() {
  ObserverSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = observers_;
  }
  return find_fault_hook(*snap);
}

double Runtime::watchdog_seconds() {
  std::lock_guard<std::mutex> lock(mu_);
  return watchdog_seconds_;
}

void Runtime::set_watchdog_seconds(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  watchdog_seconds_ = seconds;
  if (pool_) pool_->set_deadline(seconds);
}

}  // namespace llp
