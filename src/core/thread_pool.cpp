#include "core/thread_pool.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp {

ThreadPool::ThreadPool(int size)
    : size_(size), shared_(std::make_shared<Shared>()) {
  LLP_REQUIRE(size >= 1, "ThreadPool size must be >= 1");
  workers_.reserve(static_cast<std::size_t>(size - 1));
  for (int lane = 1; lane < size; ++lane) {
    workers_.emplace_back([sh = shared_, lane] { worker_loop(sh, lane); });
  }
}

ThreadPool::~ThreadPool() {
  bool detach = false;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stopping = true;
    // A hung lane can never be joined. Detach every worker instead: parked
    // lanes see `stopping` and exit promptly, and the hung lane keeps only
    // the shared state (held alive by its shared_ptr) — one leaked thread
    // instead of a deadlocked destructor.
    detach = poisoned_.load(std::memory_order_relaxed) &&
             shared_->remaining > 0;
  }
  shared_->start_cv.notify_all();
  if (detach) {
    for (auto& w : workers_) w.detach();
  }
  // Otherwise jthread joins in its destructor.
}

bool ThreadPool::abandoned() const {
  if (!poisoned_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->remaining > 0;
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  Shared& sh = *shared_;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    if (poisoned_.load(std::memory_order_relaxed)) {
      // A straggler that eventually reached the join heals the pool; one
      // that is still out keeps it unusable.
      LLP_REQUIRE(sh.remaining == 0,
                  "ThreadPool has an abandoned lane (previous run timed out)");
      poisoned_.store(false, std::memory_order_relaxed);
    }
    LLP_REQUIRE(!sh.in_run, "ThreadPool::run is not reentrant");
    sh.task = fn;  // owned copy: outlives this frame even on unwind
    sh.remaining = size_ - 1;
    ++sh.generation;
    sh.in_run = true;
    sh.cancel.reset();
    {
      std::lock_guard<std::mutex> elock(sh.error_mu);
      sh.first_error = nullptr;
    }
  }
  sh.start_cv.notify_all();

  // The calling thread is lane 0.
  {
    detail::CancelScope scope(&sh.cancel);
    try {
      sh.task(0);
    } catch (...) {
      sh.capture_error();
      sh.cancel.cancel();
    }
  }

  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    const auto joined = [&sh] { return sh.remaining == 0; };
    const double dl = deadline_seconds_.load(std::memory_order_relaxed);
    if (dl <= 0.0) {
      sh.done_cv.wait(lock, joined);
    } else if (!sh.done_cv.wait_for(
                   lock, std::chrono::duration<double>(dl), joined)) {
      // Deadline expired: cancel cooperatively, then give compliant
      // stragglers one more grace deadline to reach the join.
      sh.cancel.cancel();
      if (!sh.done_cv.wait_for(lock, std::chrono::duration<double>(dl),
                               joined)) {
        timed_out = true;
        poisoned_.store(true, std::memory_order_release);
      }
    }
    sh.in_run = false;
    if (!timed_out) sh.task = nullptr;
    // On timeout the task copy is kept: the missing lane may still be
    // executing it.
  }
  sync_events_.fetch_add(1, std::memory_order_relaxed);

  if (timed_out) {
    int missing = 0;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      missing = sh.remaining;
    }
    throw TimeoutError(strfmt(
        "ThreadPool watchdog: %d of %d lanes failed to reach the join "
        "within %.3f s (+ equal grace); pool abandoned",
        missing, size_, deadline_seconds_.load(std::memory_order_relaxed)));
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(sh.error_mu);
    err = sh.first_error;
    sh.first_error = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop(std::shared_ptr<Shared> sh, int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(sh->mu);
      sh->start_cv.wait(
          lock, [&] { return sh->stopping || sh->generation != seen; });
      if (sh->stopping) return;
      seen = sh->generation;
    }
    {
      detail::CancelScope scope(&sh->cancel);
      try {
        sh->task(lane);
      } catch (...) {
        sh->capture_error();
        sh->cancel.cancel();
      }
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(sh->mu);
      last = (--sh->remaining == 0);
    }
    if (last) sh->done_cv.notify_one();
  }
}

}  // namespace llp
