#include "core/thread_pool.hpp"

#include "util/error.hpp"

namespace llp {

ThreadPool::ThreadPool(int size) : size_(size) {
  LLP_REQUIRE(size >= 1, "ThreadPool size must be >= 1");
  workers_.reserve(static_cast<std::size_t>(size - 1));
  for (int lane = 1; lane < size; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  LLP_REQUIRE(!in_run_, "ThreadPool::run is not reentrant");
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &fn;
    remaining_ = size_ - 1;
    ++generation_;
    in_run_ = true;
  }
  start_cv_.notify_all();

  // The calling thread is lane 0.
  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    task_ = nullptr;
    in_run_ = false;
  }
  sync_events_.fetch_add(1, std::memory_order_relaxed);

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [this, seen] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    try {
      (*task)(lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = (--remaining_ == 0);
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace llp
