#include "core/region.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/format.hpp"

namespace llp {

RegionId RegionRegistry::define(std::string_view name, RegionKind kind) {
  // An anonymous region would still be instrumented — and then every
  // profile line, trace row, and analyzer finding against it would read as
  // "". Reject at the source instead of reporting nameless diagnostics.
  LLP_REQUIRE(!name.empty(), "region name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) return i;
  }
  RegionStats r;
  r.name = std::string(name);
  r.kind = kind;
  r.parallel_enabled = (kind == RegionKind::kParallelLoop);
  regions_.push_back(std::move(r));
  return regions_.size() - 1;
}

RegionId RegionRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) return i;
  }
  return kNoRegion;
}

std::size_t RegionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.size();
}

void RegionRegistry::set_parallel_enabled(RegionId id, bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  regions_[id].parallel_enabled = enabled;
}

bool RegionRegistry::parallel_enabled(RegionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  return regions_[id].parallel_enabled;
}

void RegionRegistry::set_all_parallel(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : regions_) {
    if (r.kind == RegionKind::kParallelLoop) r.parallel_enabled = enabled;
  }
}

void RegionRegistry::record(RegionId id, std::uint64_t trips, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  auto& r = regions_[id];
  ++r.invocations;
  r.total_trips += trips;
  r.seconds += seconds;
}

void RegionRegistry::record_lanes(RegionId id, double max_lane_seconds,
                                  double mean_lane_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  regions_[id].lane_max_seconds += max_lane_seconds;
  regions_[id].lane_mean_seconds += mean_lane_seconds;
}

void RegionRegistry::add_flops(RegionId id, double flops) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  regions_[id].flops += flops;
}

void RegionRegistry::add_bytes(RegionId id, double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  regions_[id].bytes += bytes;
}

void RegionRegistry::record_fault(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  ++regions_[id].faults;
}

void RegionRegistry::record_recovery(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  ++regions_[id].recoveries;
}

RegionStats RegionRegistry::stats(RegionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  LLP_REQUIRE(id < regions_.size(), "bad RegionId");
  return regions_[id];
}

std::vector<RegionStats> RegionRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_;
}

void RegionRegistry::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : regions_) {
    r.invocations = 0;
    r.total_trips = 0;
    r.seconds = 0.0;
    r.flops = 0.0;
    r.bytes = 0.0;
    r.lane_max_seconds = 0.0;
    r.lane_mean_seconds = 0.0;
    r.faults = 0;
    r.recoveries = 0;
  }
}

std::string RegionRegistry::profile_report() const {
  auto rows = snapshot();
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RegionStats& a, const RegionStats& b) {
                     return a.seconds > b.seconds;
                   });
  double total = 0.0;
  for (const auto& r : rows) total += r.seconds;
  std::string out = strfmt("%-32s %8s %10s %12s %8s %9s\n", "region", "kind",
                           "calls", "time(s)", "%time", "trips/call");
  for (const auto& r : rows) {
    out += strfmt("%-32s %8s %10llu %12.6f %7.2f%% %9.1f\n", r.name.c_str(),
                  r.kind == RegionKind::kParallelLoop
                      ? (r.parallel_enabled ? "par" : "par-off")
                      : "serial",
                  static_cast<unsigned long long>(r.invocations), r.seconds,
                  total > 0.0 ? 100.0 * r.seconds / total : 0.0,
                  r.mean_trips());
  }
  return out;
}

}  // namespace llp
