// Autotuner hook: how the core runtime talks to an (optional) tuner.
//
// The paper's methodology is a human feedback loop — profile, apply the
// Table 1/2 cost-benefit rules, pick an outer loop and a schedule,
// re-measure. src/tune automates that loop, but core must not depend on it
// (dependency order: util → core → perf → tune). So core owns only this
// minimal interface: a loop marked ForOptions::kAuto asks the installed
// LoopTuner for a configuration before launch and reports its measured wall
// time and lane imbalance after the join. The concrete search policy lives
// behind the interface in llp::tune.
#pragma once

#include <cstdint>

#include "core/region.hpp"
#include "core/schedule.hpp"

namespace llp {

/// One point in the configuration space a tuned loop searches:
/// {schedule} x {chunk} x {num_threads}.
struct LoopConfig {
  Schedule schedule = Schedule::kStaticBlock;
  std::int64_t chunk = 1;
  int num_threads = 0;  ///< 0 = runtime default

  friend bool operator==(const LoopConfig& a, const LoopConfig& b) {
    return a.schedule == b.schedule && a.chunk == b.chunk &&
           a.num_threads == b.num_threads;
  }
};

/// Interface consulted by parallel_for for ForOptions::kAuto loops.
/// Implementations must be thread-safe: auto loops may launch from any
/// thread, and choose()/report() are called outside the runtime lock.
/// Neither call may itself enter a parallel construct.
class LoopTuner {
public:
  virtual ~LoopTuner() = default;

  /// Pick the configuration for the next invocation of `region` with
  /// `trips` iterations.
  virtual LoopConfig choose(RegionId region, std::int64_t trips) = 0;

  /// Feed back one measured invocation: the configuration actually run,
  /// its wall time, and the measured busiest-lane/mean-lane imbalance
  /// factor (0 when no per-lane timing was recorded, e.g. serial runs).
  /// `sample_valid` is false when the measurement is not trustworthy — the
  /// invocation threw, was cancelled, tripped the watchdog, or had a fault
  /// injected into it. Invalid samples must not enter timing statistics
  /// (or the persistent TuningDb); implementations may still count them.
  virtual void report(RegionId region, std::int64_t trips,
                      const LoopConfig& used, double seconds,
                      double imbalance, bool sample_valid) = 0;
};

}  // namespace llp
