// Loop-iteration scheduling policies for llp::parallel_for.
//
// The paper parallelizes with C$doacross, whose default hands each processor
// one contiguous block of iterations — Schedule::kStaticBlock here. The other
// policies cover what OpenMP offers (schedule(static,chunk) / dynamic /
// guided) so the runtime can serve as a general loop-level-parallelism
// library, and so the schedule-ablation bench can compare them.
//
// Partitioning is exposed as pure functions: the stair-step speedup model
// (model/stairstep.hpp) is literally "the largest share any processor gets
// under kStaticBlock", so tests tie the two together.
#pragma once

#include <cstdint>
#include <vector>

namespace llp {

enum class Schedule {
  kStaticBlock,   ///< one contiguous block per thread (C$doacross default)
  kStaticChunked, ///< fixed-size chunks dealt round-robin
  kDynamic,       ///< threads grab fixed-size chunks from a shared counter
  kGuided,        ///< dynamic with geometrically shrinking chunks
};

/// Half-open iteration range [begin, end).
struct IterRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return end <= begin; }
};

/// Contiguous block assigned to `thread` of `nthreads` under kStaticBlock.
/// Iterations are spread as evenly as possible: the first (n % nthreads)
/// threads get one extra iteration.
IterRange static_block(std::int64_t n, int thread, int nthreads) noexcept;

/// Largest number of iterations any single thread receives under
/// kStaticBlock — ceil(n / nthreads). This is the quantity behind the
/// paper's Table 3 / Figure 1 stair-step.
std::int64_t max_block_size(std::int64_t n, int nthreads) noexcept;

/// All chunks assigned to `thread` under kStaticChunked with `chunk` size.
std::vector<IterRange> static_chunks(std::int64_t n, int thread, int nthreads,
                                     std::int64_t chunk);

/// Guided-schedule chunk size given remaining iterations.
std::int64_t guided_chunk(std::int64_t remaining, int nthreads,
                          std::int64_t min_chunk) noexcept;

}  // namespace llp
