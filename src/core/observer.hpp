// Unified runtime-event API: the single seam between the core runtime and
// everything that watches or steers it.
//
// The paper's methodology is measurement-driven — profile, parallelize the
// most expensive loop, re-measure (§4), and diagnose contention from
// fixed-size scaling profiles (§7). The registry's flat RegionStats answer
// "how much", but not "when": when did a lane straggle, a chunk get stolen,
// a fault fire, a checkpoint stall a step. RuntimeObserver is the seam that
// carries that timeline.
//
// One registration surface, two roles:
//
//   * passive observation — on_event(Event) receives every timestamped
//     runtime event (region enter/exit, lane begin/end, chunk
//     acquire/finish, cancellation, fault, rollback, checkpoint writes).
//     src/obs implements a lock-free tracer on top of exactly this.
//   * participation — an observer may expose a LoopTuner or FaultHook
//     "facet"; the runtime consults the first observer offering one at the
//     same points it used to consult the dedicated hook slots. The legacy
//     Runtime::set_tuner / set_fault_hook calls still work: they register
//     internal adapter observers through this same seam.
//
// on_event is called concurrently from every lane on the hot path;
// implementations must be thread-safe and cheap (no locks on the common
// path, no allocation). An installed observer must outlive every parallel
// construct that runs while it is registered — the same contract the
// dedicated hooks always had.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/access_hook.hpp"
#include "core/fault_hook.hpp"
#include "core/region.hpp"
#include "core/tuner_hook.hpp"

namespace llp {

/// Everything the runtime can tell an observer about. Payload fields `a`
/// and `b` are kind-specific (documented per enumerator).
enum class EventKind : std::uint8_t {
  kRegionEnter,    ///< loop entered; a = trip count, b = lanes used
  kRegionExit,     ///< loop joined; a = wall ns, b = 1 ok / 0 failed
  kLaneBegin,      ///< lane starts its share; lane set
  kLaneEnd,        ///< lane done; a = lane wall ns
  kChunkAcquire,   ///< dynamic/guided/chunked grab; a = begin, b = end
  kChunkFinish,    ///< the grabbed chunk completed; a = begin, b = end
  kCancel,         ///< lane observed cooperative cancellation
  kFault,          ///< injected fault fired; a = invocation, lane set
  kRollback,       ///< recovery rolled the solver back; a = standing step
  kCkptWriteBegin, ///< durable checkpoint write started; a = step
  kCkptWriteEnd,   ///< durable write returned; a = step, b = 1 ok / 0 failed
  kCkptDurable,    ///< a generation became durable; a = generation
  kStepBegin,      ///< solver time step started; a = step index
  kStepEnd,        ///< solver time step finished; a = step index
  kMark,           ///< user-defined mark (LaneContext::mark); a, b free
};
inline constexpr int kNumEventKinds = static_cast<int>(EventKind::kMark) + 1;

/// Short stable name for an event kind (exporters key display names on it).
const char* event_kind_name(EventKind kind) noexcept;

/// One timestamped runtime event. POD, 40 bytes: cheap to copy into a ring.
struct Event {
  std::uint64_t t_ns = 0;         ///< steady-clock nanoseconds (event_now_ns)
  RegionId region = kNoRegion;    ///< owning region, kNoRegion for global
  std::int64_t a = 0;             ///< kind-specific payload
  std::int64_t b = 0;             ///< kind-specific payload
  EventKind kind = EventKind::kMark;
  std::int8_t pad = 0;
  std::int16_t lane = -1;         ///< emitting lane, -1 when not lane-bound
  std::int32_t tid = -1;          ///< filled by the tracer (ring slot), not core
};

/// Timestamp source for events: steady-clock nanoseconds. Exporters
/// normalize against their own epoch.
inline std::uint64_t event_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The single seam. Default implementation observes nothing and offers no
/// facets, so subclasses override only what they need.
class RuntimeObserver {
public:
  virtual ~RuntimeObserver() = default;

  /// Passive event stream. Called from any thread, concurrently, on the
  /// hot path; must be thread-safe, cheap, and must not throw or enter a
  /// parallel construct.
  virtual void on_event(const Event& event) { (void)event; }

  /// Participant facets: the runtime consults the first registered
  /// observer returning non-null where it used to consult the dedicated
  /// hook slot. Facet calls keep their original contracts (choose/report
  /// for the tuner, begin/on_lane/tainted for faults — on_lane may throw).
  virtual LoopTuner* tuner_facet() { return nullptr; }
  virtual FaultHook* fault_facet() { return nullptr; }
  /// Access-logging facet: loop bodies feed it read/write index intervals
  /// for the dependence checker (src/analyze). Contract in access_hook.hpp.
  virtual AccessHook* access_facet() { return nullptr; }
};

/// Immutable snapshot of the registered observers, shared between the
/// runtime and in-flight loops (copy-on-write on registration changes).
using ObserverList = std::vector<RuntimeObserver*>;
using ObserverSnapshot = std::shared_ptr<const ObserverList>;

/// Dispatch one event to every observer in the snapshot, stamping the
/// timestamp if the caller left it zero.
inline void emit_event(const ObserverList& observers, Event event) {
  if (event.t_ns == 0) event.t_ns = event_now_ns();
  for (RuntimeObserver* o : observers) o->on_event(event);
}

}  // namespace llp
