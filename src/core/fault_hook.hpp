// Fault-injection hook: how the core runtime talks to an (optional)
// fault injector.
//
// Same layering pattern as tuner_hook.hpp: the deterministic injector lives
// in src/fault, but the injection points are inside parallel_for, so core
// owns only this minimal interface. A loop with a region calls begin() once
// per invocation (the injector keys its FaultPlan on region x invocation x
// lane) and on_lane() on every lane before that lane runs its share of the
// iteration space. on_lane may throw (injected exception), sleep (injected
// straggler), poison registered arrays with NaN, or never return (injected
// hard hang, which the ThreadPool watchdog converts into a TimeoutError).
//
// No hook installed (the normal case) costs one nullptr check per loop.
#pragma once

#include <cstdint>

#include "core/region.hpp"

namespace llp {

/// Interface consulted by parallel_for when a fault hook is installed in the
/// Runtime. Implementations must be thread-safe: on_lane is called
/// concurrently from every lane.
class FaultHook {
public:
  virtual ~FaultHook() = default;

  /// Called once at loop entry (before any lane runs, including the serial
  /// fallback path). Returns the 0-based invocation index of `region`,
  /// which the injector counts itself so faults key on a stable timeline.
  virtual std::uint64_t begin(RegionId region) = 0;

  /// Called on each participating lane before it executes its share.
  /// May throw, delay, poison memory, or hang, per the installed plan.
  virtual void on_lane(RegionId region, std::uint64_t invocation,
                       int lane) = 0;

  /// Did any fault fire during `invocation` of `region`? Queried after the
  /// join so perturbed wall-time measurements can be discarded (e.g. kept
  /// out of the autotuner's statistics).
  virtual bool tainted(RegionId region, std::uint64_t invocation) = 0;
};

}  // namespace llp
