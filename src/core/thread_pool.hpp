// Persistent worker pool with fork-join semantics.
//
// This is the machinery behind every C$doacross-style construct in the
// library. A pool of (size-1) worker threads parks on a condition variable;
// ThreadPool::run broadcasts one callable to all lanes (the calling thread
// participates as lane 0) and returns after every lane has finished — a
// fork-join barrier. That join is exactly the "synchronization event" whose
// cost the paper's Tables 1 and 2 are about, and micro_runtime measures it.
//
// Exceptions thrown by any lane are captured; the first one is rethrown on
// the calling thread after the join, so a failing loop body cannot deadlock
// or tear down a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llp {

class ThreadPool {
public:
  /// Creates a pool that runs tasks on `size` lanes total: the calling
  /// thread plus (size-1) dedicated workers. size >= 1.
  explicit ThreadPool(int size);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of lanes (including the caller's lane 0).
  int size() const noexcept { return size_; }

  /// Run fn(lane) on every lane in [0, size). Blocks until all lanes finish
  /// (fork-join). Not reentrant: calling run from inside fn throws.
  /// If any lane throws, the first captured exception is rethrown here.
  void run(const std::function<void(int)>& fn);

  /// Number of fork-join synchronization events issued so far.
  std::uint64_t sync_events() const noexcept {
    return sync_events_.load(std::memory_order_relaxed);
  }

private:
  void worker_loop(int lane);

  const int size_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stopping_ = false;
  bool in_run_ = false;

  std::mutex error_mu_;
  std::exception_ptr first_error_;

  std::atomic<std::uint64_t> sync_events_{0};

  // Declared last on purpose: jthreads join in their destructor, and the
  // workers must be gone before the mutexes/condition variables they use
  // are destroyed (members destruct in reverse declaration order).
  std::vector<std::jthread> workers_;
};

}  // namespace llp
