// Persistent worker pool with fork-join semantics.
//
// This is the machinery behind every C$doacross-style construct in the
// library. A pool of (size-1) worker threads parks on a condition variable;
// ThreadPool::run broadcasts one callable to all lanes (the calling thread
// participates as lane 0) and returns after every lane has finished — a
// fork-join barrier. That join is exactly the "synchronization event" whose
// cost the paper's Tables 1 and 2 are about, and micro_runtime measures it.
//
// Failure semantics:
//   * Exceptions thrown by any lane are captured; the first one is rethrown
//     on the calling thread after the join ("first error wins"), so a
//     failing loop body cannot deadlock or tear down a worker.
//   * Every run arms a CancelToken (visible to lane code via
//     llp::cancelled()); the token flips as soon as any lane throws, so
//     cooperative siblings stop at their next chunk boundary.
//   * An optional watchdog deadline bounds the join: if worker lanes have
//     not finished within `deadline` seconds of lane 0 completing, the pool
//     cancels cooperatively, waits one more grace deadline, then marks
//     itself abandoned and throws llp::TimeoutError instead of deadlocking.
//     An abandoned pool refuses further runs (unless the straggler
//     eventually arrives, which heals it) and detaches rather than joins
//     its workers on destruction; the worker-shared state is kept alive by
//     shared_ptr so a truly hung lane leaks one thread, nothing more.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel.hpp"

namespace llp {

class ThreadPool {
public:
  /// Creates a pool that runs tasks on `size` lanes total: the calling
  /// thread plus (size-1) dedicated workers. size >= 1.
  explicit ThreadPool(int size);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of lanes (including the caller's lane 0).
  int size() const noexcept { return size_; }

  /// Run fn(lane) on every lane in [0, size). Blocks until all lanes finish
  /// (fork-join). Not reentrant: calling run from inside fn throws.
  /// If any lane throws, the first captured exception is rethrown here.
  /// If the watchdog deadline expires, throws llp::TimeoutError.
  void run(const std::function<void(int)>& fn);

  /// Watchdog deadline in seconds for worker lanes to reach the join after
  /// lane 0 finishes; <= 0 (the default) waits forever.
  void set_deadline(double seconds) noexcept {
    deadline_seconds_.store(seconds, std::memory_order_relaxed);
  }
  double deadline() const noexcept {
    return deadline_seconds_.load(std::memory_order_relaxed);
  }

  /// True after a watchdog timeout whose straggler has still not arrived:
  /// the pool cannot run and cannot be safely joined (the Runtime leaks and
  /// replaces such pools). A pool whose straggler eventually finished heals
  /// on the next run() and reports false here.
  bool abandoned() const;

  /// Number of fork-join synchronization events issued so far.
  std::uint64_t sync_events() const noexcept {
    return sync_events_.load(std::memory_order_relaxed);
  }

private:
  // Everything the workers touch. Held by shared_ptr from each worker so an
  // abandoned pool's state stays valid for detached (hung) lanes after the
  // ThreadPool object itself is gone.
  struct Shared {
    std::mutex mu;
    std::condition_variable start_cv;
    std::condition_variable done_cv;
    std::function<void(int)> task;  // owned copy: cannot dangle on unwind
    std::uint64_t generation = 0;
    int remaining = 0;
    bool stopping = false;
    bool in_run = false;
    CancelToken cancel;

    std::mutex error_mu;
    std::exception_ptr first_error;

    void capture_error() noexcept {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  static void worker_loop(std::shared_ptr<Shared> sh, int lane);

  const int size_;
  std::atomic<double> deadline_seconds_{0.0};
  std::atomic<bool> poisoned_{false};
  std::atomic<std::uint64_t> sync_events_{0};
  std::shared_ptr<Shared> shared_;
  std::vector<std::jthread> workers_;
};

}  // namespace llp
