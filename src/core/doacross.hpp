// Directive-flavored sugar: named, registry-instrumented parallel loops.
//
// doacross("rhs_j_flux", LMAX, body) is the C++ spelling of
//
//   C$doacross local(...)
//   DO 10 L = 1, LMAX
//
// with the region automatically registered so that (a) it appears in the
// flat profile, (b) it can be toggled serial/parallel for incremental
// parallelization, and (c) the SMP simulator can replay it at higher
// processor counts.
//
// serial_region times code that is deliberately left serial (the paper keeps
// boundary-condition routines serial because their work per sync event is
// too small — Table 2); recording them is what lets the simulator apply
// Amdahl's law faithfully.
#pragma once

#include <chrono>
#include <string_view>
#include <utility>

#include "core/parallel_for.hpp"

namespace llp {

/// Named parallel loop over [0, n). The region is created on first use.
/// Returns the RegionId so hot paths can cache it.
template <typename Body>
RegionId doacross(std::string_view name, std::int64_t n, Body&& body,
                  ForOptions opts = {}) {
  auto& reg = regions();
  const RegionId id = reg.define(name, RegionKind::kParallelLoop);
  opts.region = id;
  parallel_for(0, n, std::forward<Body>(body), opts);
  return id;
}

/// Parallel loop on a previously defined region (avoids the name lookup).
template <typename Body>
void doacross(RegionId id, std::int64_t n, Body&& body, ForOptions opts = {}) {
  opts.region = id;
  parallel_for(0, n, std::forward<Body>(body), opts);
}

/// Timed serial section recorded under `name` with RegionKind::kSerial.
template <typename Fn>
RegionId serial_region(std::string_view name, Fn&& fn) {
  auto& reg = regions();
  const RegionId id = reg.define(name, RegionKind::kSerial);
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  reg.record(id, 0, dt.count());
  return id;
}

}  // namespace llp
