#include "core/schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace llp {

IterRange static_block(std::int64_t n, int thread, int nthreads) noexcept {
  LLP_ASSERT(nthreads > 0 && thread >= 0 && thread < nthreads && n >= 0);
  const std::int64_t base = n / nthreads;
  const std::int64_t extra = n % nthreads;
  const std::int64_t t = thread;
  const std::int64_t begin = t * base + std::min<std::int64_t>(t, extra);
  const std::int64_t len = base + (t < extra ? 1 : 0);
  return {begin, begin + len};
}

std::int64_t max_block_size(std::int64_t n, int nthreads) noexcept {
  LLP_ASSERT(nthreads > 0 && n >= 0);
  return (n + nthreads - 1) / nthreads;
}

std::vector<IterRange> static_chunks(std::int64_t n, int thread, int nthreads,
                                     std::int64_t chunk) {
  LLP_REQUIRE(chunk > 0, "chunk must be positive");
  LLP_REQUIRE(nthreads > 0 && thread >= 0 && thread < nthreads,
              "bad thread/nthreads");
  std::vector<IterRange> out;
  for (std::int64_t start = static_cast<std::int64_t>(thread) * chunk; start < n;
       start += static_cast<std::int64_t>(nthreads) * chunk) {
    out.push_back({start, std::min(start + chunk, n)});
  }
  return out;
}

std::int64_t guided_chunk(std::int64_t remaining, int nthreads,
                          std::int64_t min_chunk) noexcept {
  LLP_ASSERT(nthreads > 0 && min_chunk > 0);
  const std::int64_t c = remaining / (2 * static_cast<std::int64_t>(nthreads));
  return std::max(min_chunk, c);
}

}  // namespace llp
