// Cooperative cancellation for fork-join runs.
//
// When one lane of a parallel construct throws, finishing the other lanes'
// full iteration ranges is pure waste — and on a half-updated solution it is
// actively harmful. The ThreadPool arms one CancelToken per run and flips it
// as soon as any lane fails (or the watchdog gives up waiting); the
// scheduling loops in parallel_for poll it at chunk boundaries, so sibling
// lanes stop within one chunk of the failure. Long loop bodies can poll
// llp::cancelled() themselves for finer-grained exits.
//
// Cancellation is advisory: a lane that never polls still runs to completion
// (or hangs — which is what the watchdog deadline is for).
#pragma once

#include <atomic>

namespace llp {

class CancelToken {
public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> flag_{false};
};

namespace detail {
// Token of the run this thread is currently a lane of (nullptr outside any
// parallel construct). Set by ThreadPool around each task invocation; nested
// runs (transient pools) save and restore the outer token.
inline thread_local const CancelToken* tls_cancel = nullptr;

/// RAII: install a token as this thread's current one for the duration.
class CancelScope {
public:
  explicit CancelScope(const CancelToken* token) noexcept
      : prev_(tls_cancel) {
    tls_cancel = token;
  }
  ~CancelScope() { tls_cancel = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

private:
  const CancelToken* prev_;
};
}  // namespace detail

/// Has the parallel run this thread is executing been cancelled?
/// Always false outside a parallel construct.
inline bool cancelled() noexcept {
  return detail::tls_cancel != nullptr && detail::tls_cancel->cancelled();
}

}  // namespace llp
