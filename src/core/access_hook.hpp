// Access-logging hook: how the core runtime talks to an (optional)
// loop-safety analyzer.
//
// Same layering pattern as tuner_hook.hpp / fault_hook.hpp: the dependence
// checker lives in src/analyze, but the recording points are inside loop
// bodies (LaneContext::log_read/log_write, AccessSpan), so core owns only
// this minimal interface. A body reports half-open index intervals it reads
// or writes of a named array; at region exit the analyzer intersects the
// per-lane sets and reports any cross-lane overlap involving a write — a
// loop-carried dependence, the thing a C$doacross directive asserts cannot
// exist.
//
// Coordinates are caller-chosen per region: a loop may log true linear
// element indices (the update/rhs loops do) or the parallel-dimension task
// coordinate (the sweeps do, since a strided pencil has no useful bounding
// interval). The checker only ever compares sets logged within ONE region
// invocation, so the coordinate space needs to be consistent only there.
//
// No hook installed (the normal case) costs one nullptr check per logging
// call.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/region.hpp"

namespace llp {

/// What a logged interval did to the array.
enum class AccessKind : std::uint8_t { kRead, kWrite };

/// Interface consulted by loop bodies when an access logger is installed in
/// the Runtime. Implementations must be thread-safe: on_access and
/// on_scratch are called concurrently from every lane.
class AccessHook {
public:
  virtual ~AccessHook() = default;

  /// Intern a stable array name into a dense id. Cold path: call once per
  /// body invocation (AccessSpan construction), not per element.
  virtual int array_id(std::string_view name) = 0;

  /// Record that `lane` of the active invocation of `region` accessed
  /// [begin, end) of array `array`. Hot-ish path: called once per coalesced
  /// interval, not per element.
  virtual void on_access(RegionId region, int lane, int array,
                         AccessKind kind, std::int64_t begin,
                         std::int64_t end) = 0;

  /// Record that `lane` used the scratch buffer at `ptr` (`bytes` long)
  /// during the active invocation of `region`. The analyzer flags buffers
  /// reported by more than one lane whose size crosses the plane threshold
  /// — the paper's rule that scratch must be privatized pencils, not a
  /// shared plane.
  virtual void on_scratch(RegionId region, int lane, const void* ptr,
                          std::size_t bytes) = 0;
};

}  // namespace llp
