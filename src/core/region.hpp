// Parallel-region registry: the bookkeeping behind incremental
// parallelization.
//
// The paper's methodology (§4) is to profile, parallelize the most expensive
// loops one at a time, and re-measure — something loop-level parallelism
// permits and all-or-nothing approaches (HPF, MPI) do not. RegionRegistry is
// that workflow as an API: every candidate loop is registered once by name,
// can be switched between serial and parallel execution at runtime, and
// accumulates a flat profile (invocations, trip counts, wall time, flops,
// estimated traffic). The same records feed the SMP performance simulator,
// which replays them for machines with more processors than the host.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace llp {

using RegionId = std::size_t;
inline constexpr RegionId kNoRegion = static_cast<RegionId>(-1);

/// What a region represents, for Amdahl accounting in the simulator.
enum class RegionKind {
  kParallelLoop,  ///< a doacross loop; scales with processors
  kSerial,        ///< deliberately unparallelized code (e.g. BC routines)
};

/// Flat-profile record for one region (one loop nest or serial section).
struct RegionStats {
  std::string name;
  RegionKind kind = RegionKind::kParallelLoop;
  bool parallel_enabled = true;   ///< currently run with threads?
  std::uint64_t invocations = 0;  ///< times the region executed
  std::uint64_t total_trips = 0;  ///< sum of parallelized-loop trip counts
  double seconds = 0.0;           ///< total wall time
  double flops = 0.0;             ///< caller-accumulated floating-point ops
  double bytes = 0.0;             ///< caller-accumulated memory traffic
  double lane_max_seconds = 0.0;  ///< sum over invocations of busiest lane
  double lane_mean_seconds = 0.0; ///< sum over invocations of mean lane time
  std::uint64_t faults = 0;       ///< faults observed/injected in this region
  std::uint64_t recoveries = 0;   ///< recoveries attributed to this region

  /// Average trip count per invocation (0 for serial regions).
  double mean_trips() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(total_trips) /
                                  static_cast<double>(invocations);
  }

  /// Measured load-imbalance factor: busiest lane / mean lane, >= 1 when
  /// lane timing has been recorded, 0 otherwise. A static schedule over a
  /// skewed loop shows up here; the fix is chunked/dynamic scheduling or
  /// restructuring (the profiling step of the paper's methodology).
  double imbalance() const {
    return lane_mean_seconds > 0.0 ? lane_max_seconds / lane_mean_seconds
                                   : 0.0;
  }
};

/// Thread-safe registry of regions. Regions are identified by dense ids in
/// definition order; define() is idempotent by name.
class RegionRegistry {
public:
  /// Register (or look up) a region. Safe to call from multiple threads.
  /// Throws llp::Error on an empty name: every region is a diagnostic
  /// anchor (profile, trace, analyzer findings) and must be nameable.
  RegionId define(std::string_view name,
                  RegionKind kind = RegionKind::kParallelLoop);

  /// Look up by name; returns kNoRegion if absent.
  RegionId find(std::string_view name) const;

  std::size_t size() const;

  /// Enable/disable threaded execution of a parallel-loop region. Disabled
  /// regions run serially — this is the "parallelize one loop at a time"
  /// switch.
  void set_parallel_enabled(RegionId id, bool enabled);
  bool parallel_enabled(RegionId id) const;
  void set_all_parallel(bool enabled);

  /// Record one execution of the region.
  void record(RegionId id, std::uint64_t trips, double seconds);
  /// Record per-lane timing of one parallel execution (for imbalance()).
  void record_lanes(RegionId id, double max_lane_seconds,
                    double mean_lane_seconds);
  /// Attribute floating-point work / traffic to the region (for MFLOPS and
  /// NUMA-bandwidth reporting).
  void add_flops(RegionId id, double flops);
  void add_bytes(RegionId id, double bytes);

  /// Health accounting: a fault observed in (or injected into) the region,
  /// and a successful recovery attributed to it. Fed by the fault
  /// subsystem's injector/HealthMonitor and the solver's retry loop.
  void record_fault(RegionId id);
  void record_recovery(RegionId id);

  /// Copy of one region's stats (throws on bad id).
  RegionStats stats(RegionId id) const;

  /// Copy of all regions' stats, in definition order.
  std::vector<RegionStats> snapshot() const;

  /// Zero all counters, keep definitions and enable flags.
  void reset_stats();

  /// Render a flat profile sorted by descending total time — the output of
  /// "prof" that drives which loop to parallelize next.
  std::string profile_report() const;

private:
  mutable std::mutex mu_;
  std::vector<RegionStats> regions_;
};

}  // namespace llp
