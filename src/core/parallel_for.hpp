// parallel_for / parallel_reduce — the library's doacross constructs.
//
// Usage mirrors the paper's Example 1:
//
//   CSdoacross local (L,J,K)            llp::parallel_for(0, LMAX, [&](i64 l) {
//   DO 10 L=1,LMAX                        for (int k = 0; k < KMAX; ++k)
//     DO 10 K=1,KMAX               =>       for (int j = 0; j < JMAX; ++j)
//       DO 10 J=1,JMAX                        ... body(j,k,l) ...
//   10 CONTINUE                          });
//
// Only the outer loop is handed to the runtime; the inner loops stay serial
// inside the body, which is the paper's central prescription (parallelize
// outer loops, leave the vectorizable inner loops to the compiler/CPU).
//
// Locals: anything declared inside the lambda is thread-private, which
// replaces the directive's `local(...)` clause. Per-thread scratch buffers
// (the paper's resized pencil arrays) are obtained via the lane index
// overloads or WorkspacePool in f3d.
//
// Observability: instrumented loops (opts.region set) emit timestamped
// events through the RuntimeObserver seam — region enter/exit, per-lane
// begin/end, chunk acquire/finish for the chunked schedules, cancellation.
// With no observers registered the emission paths cost one empty-vector
// check per loop; src/obs turns the stream into Chrome traces and
// per-region latency histograms.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/cancel.hpp"
#include "core/fault_hook.hpp"
#include "core/observer.hpp"
#include "core/region.hpp"
#include "core/runtime.hpp"
#include "core/schedule.hpp"
#include "core/thread_pool.hpp"
#include "core/tuner_hook.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace llp {

/// Options for one parallel loop.
///
/// Construct via the fluent builder:
///
///   llp::parallel_for(0, n, body,
///       llp::ForOptions::in_region(id).with_schedule(Schedule::kDynamic)
///                                     .with_chunk(8));
///   llp::parallel_for(0, n, body, llp::ForOptions::auto_tuned(id));
///
/// The aggregate fields below remain public and keep working — existing
/// brace/assignment construction is not broken — but they are DEPRECATED
/// for new code: prefer the builder, which names every knob at the call
/// site and composes with the kAuto path without field-order pitfalls.
struct ForOptions {
  Schedule schedule = Schedule::kStaticBlock;
  std::int64_t chunk = 1;      ///< chunk size for chunked/dynamic schedules
  int num_threads = 0;         ///< 0 = runtime default
  RegionId region = kNoRegion; ///< optional registry instrumentation

  /// Consult the runtime's LoopTuner (if installed and enabled) for
  /// schedule/chunk/num_threads, and report the measured time back after
  /// the join. Requires a region (the tuner keys on it); the explicit
  /// fields above become the fallback when tuning is off.
  bool auto_tune = false;

  /// Ready-made options for an autotuned loop: set `region` and go.
  /// Prefer ForOptions::auto_tuned(region), which does both in one step.
  static const ForOptions kAuto;

  // --- fluent builder -------------------------------------------------

  /// Instrumented loop on `region` with explicit (default) configuration.
  /// Rejects kNoRegion: an "instrumented" loop with no region would skip
  /// the registry, the trace, AND the analyzer — and any analyzer finding
  /// against it would be anonymous. Use plain ForOptions{} for a loop that
  /// is deliberately uninstrumented.
  static ForOptions in_region(RegionId region) {
    LLP_REQUIRE(region != kNoRegion,
                "ForOptions::in_region needs a real region id (registry "
                "names are non-empty; use ForOptions{} for an "
                "uninstrumented loop)");
    ForOptions o;
    o.region = region;
    return o;
  }

  /// Instrumented loop on `region` that consults the installed tuner.
  static ForOptions auto_tuned(RegionId region) {
    LLP_REQUIRE(region != kNoRegion,
                "ForOptions::auto_tuned needs a real region id (the tuner "
                "and analyzer key on it)");
    ForOptions o;
    o.region = region;
    o.auto_tune = true;
    return o;
  }

  ForOptions& with_schedule(Schedule s) {
    schedule = s;
    return *this;
  }
  ForOptions& with_chunk(std::int64_t c) {
    chunk = c;
    return *this;
  }
  ForOptions& with_threads(int n) {
    num_threads = n;
    return *this;
  }
  ForOptions& with_region(RegionId r) {
    region = r;
    return *this;
  }
  ForOptions& with_auto_tune(bool on = true) {
    auto_tune = on;
    return *this;
  }
};

inline const ForOptions ForOptions::kAuto{Schedule::kStaticBlock, 1, 0,
                                          kNoRegion, true};

/// Per-lane execution context, passed to bodies declared as
/// body(i, const LaneContext&). Carries what the bare (i, lane) overload
/// cannot without accreting positional parameters: the lane id, the
/// owning region, a cooperative-cancellation check for long bodies, and a
/// user event emitter that lands kMark events in the trace.
class LaneContext {
public:
  LaneContext(int lane, RegionId region, const ObserverList* observers,
              AccessHook* access = nullptr) noexcept
      : lane_(lane), region_(region), observers_(observers),
        access_(access) {}

  int lane() const noexcept { return lane_; }
  RegionId region() const noexcept { return region_; }

  /// Has this parallel run been cancelled (sibling lane threw, watchdog
  /// fired)? Long bodies poll this for finer-grained exits than the
  /// runtime's chunk-boundary polling.
  bool cancelled() const noexcept { return llp::cancelled(); }

  /// Emit a user-defined kMark event attributed to this region and lane.
  /// No-op when no observers are registered — free to leave in hot code.
  void mark(std::int64_t a = 0, std::int64_t b = 0) const {
    if (observers_ == nullptr) return;
    emit_event(*observers_, Event{.t_ns = 0,
                                  .region = region_,
                                  .a = a,
                                  .b = b,
                                  .kind = EventKind::kMark,
                                  .pad = 0,
                                  .lane = static_cast<std::int16_t>(lane_),
                                  .tid = -1});
  }

  // --- access logging (loop-safety analyzer, src/analyze) -------------

  /// The installed access hook, or nullptr when no analyzer is recording.
  /// AccessSpan resolves its array id through this once per construction.
  AccessHook* access_hook() const noexcept { return access_; }

  /// Intern an array name for log_read/log_write. Returns -1 (a harmless
  /// id that the no-op logging path ignores) when no analyzer is active —
  /// callers may resolve unconditionally outside their inner loops.
  int array_id(std::string_view name) const {
    return access_ != nullptr ? access_->array_id(name) : -1;
  }

  /// Report that this lane read / wrote [begin, end) of `array` (an id
  /// from array_id). No-ops costing one null check when no analyzer is
  /// recording — free to leave in hot code.
  void log_read(int array, std::int64_t begin, std::int64_t end) const {
    if (access_ != nullptr) {
      access_->on_access(region_, lane_, array, AccessKind::kRead, begin,
                         end);
    }
  }
  void log_write(int array, std::int64_t begin, std::int64_t end) const {
    if (access_ != nullptr) {
      access_->on_access(region_, lane_, array, AccessKind::kWrite, begin,
                         end);
    }
  }

  /// Report the scratch buffer this lane works in; the analyzer flags
  /// plane-sized buffers reported by more than one lane (the pencil rule).
  void note_scratch(const void* ptr, std::size_t bytes) const {
    if (access_ != nullptr) {
      access_->on_scratch(region_, lane_, ptr, bytes);
    }
  }

private:
  int lane_;
  RegionId region_;
  const ObserverList* observers_;  ///< nullptr when nothing is registered
  AccessHook* access_;             ///< nullptr when no analyzer is recording
};

namespace detail {

/// True if Body is callable as body(i, lane); it wins over the other forms
/// (generic lambdas keep their historical int-lane behavior).
template <typename Body>
inline constexpr bool kBodyTakesLane =
    std::is_invocable_v<Body&, std::int64_t, int>;

/// True if Body is callable as body(i, const LaneContext&).
template <typename Body>
inline constexpr bool kBodyTakesContext =
    std::is_invocable_v<Body&, std::int64_t, const LaneContext&>;

template <typename Body>
inline void invoke_body(Body& body, std::int64_t i, int lane,
                        const LaneContext& ctx) {
  if constexpr (kBodyTakesLane<Body>) {
    body(i, lane);
  } else if constexpr (kBodyTakesContext<Body>) {
    (void)lane;
    body(i, ctx);
  } else {
    (void)lane;
    (void)ctx;
    body(i);
  }
}

/// Emission context for one instrumented, observed loop invocation.
/// nullptr when the loop has no region or no observers are registered.
struct EmitCtx {
  const ObserverList* observers;
  RegionId region;

  void emit(EventKind kind, int lane, std::int64_t a, std::int64_t b) const {
    emit_event(*observers, Event{.t_ns = 0,
                                 .region = region,
                                 .a = a,
                                 .b = b,
                                 .kind = kind,
                                 .pad = 0,
                                 .lane = static_cast<std::int16_t>(lane),
                                 .tid = -1});
  }
};

// Every schedule polls llp::cancelled() at chunk boundaries (for the static
// block schedule, whose whole range is one chunk, at every outer iteration),
// so once a sibling lane throws the rest stop within one chunk instead of
// finishing full work on half-updated state. A lane that observes the
// cancellation emits one kCancel event before stopping.
template <typename Body>
void run_lane(std::int64_t begin, std::int64_t n, Body& body, int lane,
              int nthreads, const ForOptions& opts,
              std::atomic<std::int64_t>& cursor, const EmitCtx* ectx,
              AccessHook* access) {
  // The shared pool may have more lanes than this loop uses (short loops
  // clamp nthreads to the trip count); surplus lanes sit the loop out.
  if (lane >= nthreads) return;
  const LaneContext ctx(lane, opts.region,
                        ectx != nullptr ? ectx->observers : nullptr, access);
  auto cancelled_here = [&] {
    if (!cancelled()) return false;
    if (ectx != nullptr) ectx->emit(EventKind::kCancel, lane, 0, 0);
    return true;
  };
  switch (opts.schedule) {
    case Schedule::kStaticBlock: {
      const IterRange r = static_block(n, lane, nthreads);
      for (std::int64_t i = r.begin; i < r.end; ++i) {
        if (cancelled_here()) return;
        invoke_body(body, begin + i, lane, ctx);
      }
      break;
    }
    case Schedule::kStaticChunked: {
      for (const IterRange& r : static_chunks(n, lane, nthreads, opts.chunk)) {
        if (cancelled_here()) return;
        if (ectx != nullptr) {
          ectx->emit(EventKind::kChunkAcquire, lane, r.begin, r.end);
        }
        for (std::int64_t i = r.begin; i < r.end; ++i) {
          invoke_body(body, begin + i, lane, ctx);
        }
        if (ectx != nullptr) {
          ectx->emit(EventKind::kChunkFinish, lane, r.begin, r.end);
        }
      }
      break;
    }
    case Schedule::kDynamic: {
      for (;;) {
        if (cancelled_here()) return;
        const std::int64_t start =
            cursor.fetch_add(opts.chunk, std::memory_order_relaxed);
        if (start >= n) break;
        const std::int64_t stop = std::min(start + opts.chunk, n);
        if (ectx != nullptr) {
          ectx->emit(EventKind::kChunkAcquire, lane, start, stop);
        }
        for (std::int64_t i = start; i < stop; ++i) {
          invoke_body(body, begin + i, lane, ctx);
        }
        if (ectx != nullptr) {
          ectx->emit(EventKind::kChunkFinish, lane, start, stop);
        }
      }
      break;
    }
    case Schedule::kGuided: {
      for (;;) {
        if (cancelled_here()) return;
        std::int64_t start = cursor.load(std::memory_order_relaxed);
        std::int64_t take = 0;
        do {
          if (start >= n) return;
          take = guided_chunk(n - start, nthreads, opts.chunk);
        } while (!cursor.compare_exchange_weak(start, start + take,
                                               std::memory_order_relaxed));
        const std::int64_t stop = std::min(start + take, n);
        if (ectx != nullptr) {
          ectx->emit(EventKind::kChunkAcquire, lane, start, stop);
        }
        for (std::int64_t i = start; i < stop; ++i) {
          invoke_body(body, begin + i, lane, ctx);
        }
        if (ectx != nullptr) {
          ectx->emit(EventKind::kChunkFinish, lane, start, stop);
        }
      }
      break;
    }
  }
}

}  // namespace detail

/// Parallel loop over [begin, end). Body is invoked as body(i),
/// body(i, lane) with lane in [0, nthreads), or
/// body(i, const LaneContext&).
///
/// Exception semantics: if any lane throws, sibling lanes are cancelled
/// cooperatively (they stop within one chunk), exactly one exception — the
/// first captured — is rethrown here, and the pool remains reusable. A lane
/// that exceeds the runtime watchdog deadline surfaces as llp::TimeoutError
/// instead of a deadlocked join.
///
/// Runs serially (still on the calling thread, same iteration order as lane 0
/// would see) when the effective thread count is 1 or when opts.region names
/// a region whose parallel execution is disabled — the incremental-
/// parallelization switch. When opts.region is set, wall time and trip count
/// are recorded in the registry either way, and runtime events are emitted
/// to every registered RuntimeObserver.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, Body&& body,
                  const ForOptions& opts = {}) {
  LLP_REQUIRE(opts.chunk >= 1, "chunk must be >= 1");
  const std::int64_t n = end > begin ? end - begin : 0;

  auto& rt = Runtime::current();
  const bool instrumented = opts.region != kNoRegion;
  const bool enabled =
      !instrumented || rt.regions().parallel_enabled(opts.region);

  // One snapshot per invocation: lanes and facets all work off the same
  // immutable observer list for the loop's whole lifetime.
  const ObserverSnapshot obs_snap = rt.observers();
  const ObserverList& obs = *obs_snap;
  const bool observed = instrumented && !obs.empty();

  // kAuto path: let the installed tuner override schedule/chunk/threads for
  // this invocation. It sees the measurement after the join, closing the
  // paper's measure -> decide -> configure loop.
  ForOptions eff = opts;
  LoopTuner* tuner = nullptr;
  if (opts.auto_tune && instrumented && enabled && n > 0 &&
      rt.auto_tune_enabled()) {
    tuner = find_tuner(obs);
    if (tuner != nullptr) {
      const LoopConfig c = tuner->choose(opts.region, n);
      eff.schedule = c.schedule;
      eff.chunk = std::max<std::int64_t>(1, c.chunk);
      // Never above the runtime lane count: callers (parallel_reduce, lane
      // workspaces) size per-lane state to at most that many lanes.
      eff.num_threads = std::min(c.num_threads, rt.num_threads());
    }
  }
  // The exact configuration reported back to the tuner (before clamping,
  // so it matches the tuner's own candidate identity).
  const LoopConfig used{eff.schedule, eff.chunk, eff.num_threads};

  int nthreads = eff.num_threads > 0 ? eff.num_threads : rt.num_threads();
  if (nthreads > n && n > 0) nthreads = static_cast<int>(n);

  // Fault injection (LLP_FAULT): instrumented loops report their invocation
  // to the installed hook, which may throw / delay / poison / hang inside
  // on_lane per the active FaultPlan. No hook (the default) costs nothing.
  FaultHook* fh = instrumented ? find_fault_hook(obs) : nullptr;
  const std::uint64_t fault_inv = fh != nullptr ? fh->begin(opts.region) : 0;

  // Access logging (LLP_ANALYZE): instrumented loops hand bodies a hook to
  // report read/write index intervals to the dependence checker. No hook
  // (the default) costs one nullptr check per logging call.
  AccessHook* ah = instrumented ? find_access_hook(obs) : nullptr;

  const detail::EmitCtx ectx_storage{&obs, opts.region};
  const detail::EmitCtx* ectx = observed ? &ectx_storage : nullptr;
  if (observed) {
    ectx->emit(EventKind::kRegionEnter, -1, n, nthreads);
  }

  const auto t0 = std::chrono::steady_clock::now();

  bool recorded_lanes = false;
  double lane_max = 0.0, lane_mean = 0.0;
  std::exception_ptr run_error;

  if (n > 0) {
    try {
      if (nthreads <= 1 || !enabled) {
        if (fh != nullptr) fh->on_lane(opts.region, fault_inv, 0);
        const LaneContext ctx(0, opts.region, observed ? &obs : nullptr, ah);
        for (std::int64_t i = begin; i < end; ++i) {
          detail::invoke_body(body, i, 0, ctx);
        }
      } else {
        std::atomic<std::int64_t> cursor{0};
        if (tuner == nullptr && eff.schedule == Schedule::kDynamic &&
            eff.chunk == 1 && n > 64) {
          // Avoid a contended counter for trivially small default chunks.
          // Tuned loops keep their chunk verbatim: the chunk IS the
          // candidate.
          eff.chunk = std::max<std::int64_t>(1, n / (8 * nthreads));
        }
        // Instrumented loops also time each lane so the region can report a
        // measured load-imbalance factor.
        struct alignas(kCacheLineBytes) LaneTime {
          double seconds = 0.0;
        };
        std::vector<LaneTime> lane_times(
            instrumented ? static_cast<std::size_t>(nthreads) : 0);
        auto lane_fn = [&](int lane) {
          // Worker lanes inherit the loop's runtime: code reached from the
          // body (fault hooks, event emitters) must see the owning runtime,
          // not the process default — pools and runtimes are per-tenant now.
          RuntimeScope rt_scope(rt);
          if (observed && lane < nthreads) {
            ectx->emit(EventKind::kLaneBegin, lane, 0, 0);
          }
          if (fh != nullptr) {
            try {
              fh->on_lane(opts.region, fault_inv, lane);
            } catch (...) {
              // Keep the lane's begin/end events balanced even when the
              // injected fault aborts the lane before it runs anything.
              if (observed && lane < nthreads) {
                ectx->emit(EventKind::kLaneEnd, lane, 0, 0);
              }
              throw;
            }
          }
          if (instrumented) {
            const auto lt0 = std::chrono::steady_clock::now();
            try {
              detail::run_lane(begin, n, body, lane, nthreads, eff, cursor,
                               ectx, ah);
            } catch (...) {
              if (observed && lane < nthreads) {
                ectx->emit(EventKind::kLaneEnd, lane, 0, 0);
              }
              throw;
            }
            const std::chrono::duration<double> d =
                std::chrono::steady_clock::now() - lt0;
            if (lane < nthreads) {
              lane_times[static_cast<std::size_t>(lane)].seconds = d.count();
              if (observed) {
                ectx->emit(EventKind::kLaneEnd, lane,
                           static_cast<std::int64_t>(d.count() * 1e9), 1);
              }
            }
          } else {
            detail::run_lane(begin, n, body, lane, nthreads, eff, cursor,
                             nullptr, ah);
          }
        };
        if (eff.num_threads > 0 && eff.num_threads != rt.num_threads()) {
          // A loop-specific thread count gets its own pool, the way OpenMP
          // honors num_threads() clauses. Pools are cached per size in the
          // runtime and checked out for the duration of the loop.
          auto pool = rt.acquire_transient_pool(nthreads);
          pool->run(lane_fn);  // on throw the pool is destroyed, not cached
          rt.release_transient_pool(std::move(pool));
        } else {
          rt.pool().run(lane_fn);
        }
        if (instrumented) {
          for (const LaneTime& lt : lane_times) {
            lane_max = std::max(lane_max, lt.seconds);
            lane_mean += lt.seconds;
          }
          lane_mean /= static_cast<double>(nthreads);
          recorded_lanes = true;
        }
      }
    } catch (...) {
      // First error wins (the pool already discarded the others); record
      // the region and tell the tuner the sample is invalid, then rethrow.
      run_error = std::current_exception();
    }
  }

  if (instrumented) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    rt.regions().record(opts.region, static_cast<std::uint64_t>(n), dt.count());
    if (recorded_lanes) {
      rt.regions().record_lanes(opts.region, lane_max, lane_mean);
    }
    if (observed) {
      ectx->emit(EventKind::kRegionExit, -1,
                 static_cast<std::int64_t>(dt.count() * 1e9),
                 run_error == nullptr ? 1 : 0);
    }
    if (tuner != nullptr) {
      const double imbalance =
          (recorded_lanes && lane_mean > 0.0) ? lane_max / lane_mean : 0.0;
      // A sample is only trustworthy when the run finished and no fault
      // perturbed it: faulted timings must never steer the search or reach
      // the persistent TuningDb.
      const bool sample_valid =
          run_error == nullptr &&
          (fh == nullptr || !fh->tainted(opts.region, fault_inv));
      tuner->report(opts.region, n, used, dt.count(), imbalance,
                    sample_valid);
    }
  }
  if (run_error) std::rethrow_exception(run_error);
}

/// Parallel loop over the collapsed 2-D iteration space [0,n0) x [0,n1),
/// outer index varying slowest — OpenMP's collapse(2). Useful when a single
/// outer loop is too short (the paper's boundary-condition faces).
template <typename Body>
void parallel_for_2d(std::int64_t n0, std::int64_t n1, Body&& body,
                     const ForOptions& opts = {}) {
  LLP_REQUIRE(n0 >= 0 && n1 >= 0, "negative extent");
  LLP_REQUIRE(n1 == 0 || n0 <= std::numeric_limits<std::int64_t>::max() / n1,
              "collapsed extent n0*n1 overflows int64");
  parallel_for(
      0, n0 * n1,
      [&body, n1](std::int64_t idx, int lane) {
        if constexpr (std::is_invocable_v<Body&, std::int64_t, std::int64_t,
                                          int>) {
          body(idx / n1, idx % n1, lane);
        } else {
          (void)lane;
          body(idx / n1, idx % n1);
        }
      },
      opts);
}

/// Parallel reduction over [begin, end). Body is body(i, T& local),
/// body(i, T& local, lane), or body(i, T& local, const LaneContext&);
/// per-lane partials live in cache-line-padded slots and are combined with
/// `combine` in lane order (deterministic for a fixed thread count).
///
/// Exception semantics follow parallel_for: exactly one error is rethrown
/// and the per-lane partials are discarded with the call frame — a failed
/// reduction never returns a partial result.
template <typename T, typename Combine, typename Body>
T parallel_reduce(std::int64_t begin, std::int64_t end, T identity,
                  Combine combine, Body&& body, const ForOptions& opts = {}) {
  struct alignas(kCacheLineBytes) Slot {
    T value;
  };
  auto& rt = Runtime::current();
  int nthreads = opts.num_threads > 0 ? opts.num_threads : rt.num_threads();
  // An autotuned loop may run at any lane count up to the runtime's, so
  // the partial slots must cover that whole range.
  if (opts.auto_tune) nthreads = std::max(nthreads, rt.num_threads());
  const std::int64_t n = end > begin ? end - begin : 0;
  if (nthreads > n && n > 0) nthreads = static_cast<int>(n);
  if (nthreads < 1) nthreads = 1;

  std::vector<Slot> slots(static_cast<std::size_t>(nthreads), Slot{identity});
  parallel_for(
      begin, end,
      [&](std::int64_t i, const LaneContext& ctx) {
        const auto lane = static_cast<std::size_t>(ctx.lane());
        if constexpr (std::is_invocable_v<Body&, std::int64_t, T&,
                                          const LaneContext&>) {
          body(i, slots[lane].value, ctx);
        } else if constexpr (std::is_invocable_v<Body&, std::int64_t, T&,
                                                 int>) {
          body(i, slots[lane].value, ctx.lane());
        } else {
          body(i, slots[lane].value);
        }
      },
      opts);

  T acc = identity;
  for (const Slot& s : slots) acc = combine(acc, s.value);
  return acc;
}

}  // namespace llp
