// AccessSpan — the instrumented span-style accessor behind the dynamic
// loop-safety analyzer.
//
// A loop body that indexes shared arrays through raw pointers is invisible
// to the dependence checker; a body that indexes them through an AccessSpan
// tells the checker exactly which half-open index intervals each lane read
// and wrote. With no analyzer recording (the overwhelmingly common case)
// every accessor is one pointer null check away from raw indexing, so the
// accessor can stay in production code — bench/micro_analyze_overhead holds
// that cost to zero within noise.
//
// Two granularities:
//
//   * element API — rd(i) / wr(i) log single indices, locally coalesced
//     into maximal runs so a sequential sweep over [a, b) costs ONE
//     on_access call, not b - a. The pending run flushes when the access
//     pattern jumps, when the kind flips, and at destruction.
//   * block API — read_block(b, e) / write_block(b, e) log an interval the
//     caller already knows (e.g. "this task consumes plane l's slab") and
//     return the raw pointer, so an un-instrumented legacy kernel can be
//     wrapped without rewriting its inner loops.
//
// The index space is whatever the caller says it is — true linear element
// indices, or a logical task coordinate for strided accesses with no useful
// bounding interval (see access_hook.hpp). The checker only compares
// intervals logged within one region invocation, so the choice is local.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/access_hook.hpp"
#include "core/parallel_for.hpp"

namespace llp {

template <typename T>
class AccessSpan {
public:
  /// View over `size` elements at `data`, logging under `array` (a name
  /// interned once here — construct per body invocation, outside inner
  /// loops). `coord_base` shifts logged coordinates: element i is logged
  /// as coord_base + i, so a subspan can keep its parent's index space.
  AccessSpan(T* data, std::int64_t size, const LaneContext& ctx,
             std::string_view array, std::int64_t coord_base = 0) noexcept
      : data_(data), size_(size), hook_(ctx.access_hook()),
        region_(ctx.region()), lane_(ctx.lane()), base_(coord_base),
        array_(hook_ != nullptr ? hook_->array_id(array) : -1) {}

  AccessSpan(const AccessSpan&) = delete;
  AccessSpan& operator=(const AccessSpan&) = delete;

  ~AccessSpan() { flush(); }

  T* data() const noexcept { return data_; }
  std::int64_t size() const noexcept { return size_; }
  bool logging() const noexcept { return hook_ != nullptr; }

  /// Element read: logs coordinate base + i (coalesced) and returns the
  /// value.
  const T& rd(std::int64_t i) const {
    if (hook_ != nullptr) note(AccessKind::kRead, i);
    return data_[i];
  }

  /// Element write access: logs coordinate base + i (coalesced) and
  /// returns a mutable reference.
  T& wr(std::int64_t i) const {
    if (hook_ != nullptr) note(AccessKind::kWrite, i);
    return data_[i];
  }

  /// Block read: log [base+begin, base+end) as read, return the pointer to
  /// element `begin` for a legacy kernel to consume.
  const T* read_block(std::int64_t begin, std::int64_t end) const {
    if (hook_ != nullptr && end > begin) {
      hook_->on_access(region_, lane_, array_, AccessKind::kRead,
                       base_ + begin, base_ + end);
    }
    return data_ + begin;
  }

  /// Block write: log [base+begin, base+end) as written, return the
  /// mutable pointer to element `begin`.
  T* write_block(std::int64_t begin, std::int64_t end) const {
    if (hook_ != nullptr && end > begin) {
      hook_->on_access(region_, lane_, array_, AccessKind::kWrite,
                       base_ + begin, base_ + end);
    }
    return data_ + begin;
  }

  /// Flush the pending coalesced run (rd/wr only; blocks log eagerly).
  void flush() const {
    if (hook_ != nullptr && run_end_ > run_begin_) {
      hook_->on_access(region_, lane_, array_, run_kind_, base_ + run_begin_,
                       base_ + run_end_);
    }
    run_begin_ = run_end_ = 0;
  }

private:
  void note(AccessKind kind, std::int64_t i) const {
    // Extend the pending run while the walk stays sequential (forward or
    // repeated) in the same kind; otherwise flush and restart. Backward or
    // strided walks degrade to one on_access per element — correct, just
    // less compressed.
    if (run_end_ > run_begin_ && kind == run_kind_ && i >= run_begin_ &&
        i <= run_end_) {
      if (i == run_end_) ++run_end_;
      return;
    }
    flush();
    run_kind_ = kind;
    run_begin_ = i;
    run_end_ = i + 1;
  }

  T* data_;
  std::int64_t size_;
  AccessHook* hook_;
  RegionId region_;
  int lane_;
  std::int64_t base_;
  int array_;
  // Pending coalesced run; mutable so const spans can log reads.
  mutable AccessKind run_kind_ = AccessKind::kRead;
  mutable std::int64_t run_begin_ = 0;
  mutable std::int64_t run_end_ = 0;
};

}  // namespace llp
