// Global runtime: thread count, shared pool, and the region registry.
//
// Mirrors the role of the OpenMP runtime: one process-wide configuration
// (LLP_NUM_THREADS environment variable, overridable via set_num_threads)
// plus the shared worker pool every doacross construct dispatches to.
#pragma once

#include <memory>
#include <mutex>

#include "core/region.hpp"
#include "core/thread_pool.hpp"

namespace llp {

class Runtime {
public:
  /// Process-wide instance.
  static Runtime& instance();

  /// Current lane count used by parallel constructs (>= 1).
  int num_threads();

  /// Change the lane count; the pool is rebuilt on next use. Thread-safe,
  /// but must not be called from inside a parallel region.
  void set_num_threads(int n);

  /// Shared pool, created lazily at the configured size.
  ThreadPool& pool();

  /// Region registry used by doacross/serial_region instrumentation.
  RegionRegistry& regions() { return regions_; }

private:
  Runtime();

  std::mutex mu_;
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
  RegionRegistry regions_;
};

/// Shorthand accessors.
inline RegionRegistry& regions() { return Runtime::instance().regions(); }
inline int num_threads() { return Runtime::instance().num_threads(); }
inline void set_num_threads(int n) { Runtime::instance().set_num_threads(n); }

}  // namespace llp
