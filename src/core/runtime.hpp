// Global runtime: thread count, shared pool, and the region registry.
//
// Mirrors the role of the OpenMP runtime: one process-wide configuration
// (LLP_NUM_THREADS environment variable, overridable via set_num_threads)
// plus the shared worker pool every doacross construct dispatches to.
// It also carries the two autotuning hooks: the master enable switch
// (LLP_TUNE environment variable / set_auto_tune_enabled) and the installed
// LoopTuner that ForOptions::kAuto loops consult.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/fault_hook.hpp"
#include "core/region.hpp"
#include "core/thread_pool.hpp"
#include "core/tuner_hook.hpp"

namespace llp {

class Runtime {
public:
  /// Process-wide instance.
  static Runtime& instance();

  /// Current lane count used by parallel constructs (>= 1).
  int num_threads();

  /// Change the lane count; the pool is rebuilt on next use. Thread-safe,
  /// but must not be called from inside a parallel region.
  void set_num_threads(int n);

  /// Shared pool, created lazily at the configured size.
  ThreadPool& pool();

  /// Check out a pool for a loop whose num_threads differs from the shared
  /// pool. Pools are cached per size and reused across invocations (the
  /// autotuner explores thread counts constantly; constructing a pool per
  /// invocation would swamp the loop it is tuning). The pool is removed
  /// from the cache while in use, so concurrent loops at the same size
  /// each get their own — same semantics as a freshly built pool.
  std::unique_ptr<ThreadPool> acquire_transient_pool(int size);
  /// Return a checked-out pool to the cache (drops it when the cache is
  /// full). Skip the call on exception paths — destroying the pool is fine.
  void release_transient_pool(std::unique_ptr<ThreadPool> pool);

  /// Region registry used by doacross/serial_region instrumentation.
  RegionRegistry& regions() { return regions_; }

  /// Autotuner consulted by ForOptions::kAuto loops. Non-owning; nullptr
  /// detaches. The tuner must outlive every auto loop that runs.
  void set_tuner(LoopTuner* tuner);
  LoopTuner* tuner();

  /// Master switch for auto-tuned loops; initialized from LLP_TUNE=1.
  /// kAuto loops fall back to their explicit options when disabled or when
  /// no tuner is installed.
  bool auto_tune_enabled();
  void set_auto_tune_enabled(bool on);

  /// Fault-injection hook consulted by instrumented loops. Non-owning;
  /// nullptr (the default) detaches. The hook must outlive every loop that
  /// runs while it is installed.
  void set_fault_hook(FaultHook* hook);
  FaultHook* fault_hook();

  /// Watchdog deadline applied to every pool this runtime hands out
  /// (shared and transient); <= 0 disables. Initialized from
  /// LLP_WATCHDOG_MS. Takes effect immediately on the shared pool and on
  /// transient pools at their next checkout.
  double watchdog_seconds();
  void set_watchdog_seconds(double seconds);

private:
  Runtime();

  std::mutex mu_;
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<ThreadPool>> transient_pools_;
  LoopTuner* tuner_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
  bool auto_tune_ = false;
  double watchdog_seconds_ = 0.0;
  RegionRegistry regions_;
};

/// Shorthand accessors.
inline RegionRegistry& regions() { return Runtime::instance().regions(); }
inline int num_threads() { return Runtime::instance().num_threads(); }
inline void set_num_threads(int n) { Runtime::instance().set_num_threads(n); }

}  // namespace llp
