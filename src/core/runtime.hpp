// Runtime: thread count, shared pool, the region registry, and the
// unified observer seam.
//
// Mirrors the role of the OpenMP runtime: a configuration (LLP_NUM_THREADS
// environment variable, overridable via set_num_threads) plus the shared
// worker pool every doacross construct dispatches to.
//
// A Runtime is an ordinary, independently constructible object. The
// process-default instance (Runtime::instance()) preserves the historical
// singleton behaviour for tools and tests, but a host that multiplexes
// tenants — the f3d_serve daemon — builds one Runtime per job so tuner
// state, fault hooks, observers, region profiles, watchdogs, and pools are
// isolated per tenant. Parallel constructs dispatch to Runtime::current():
// the runtime bound to the calling thread via RuntimeScope, falling back
// to the process default when none is bound. Every lane of a parallel
// construct runs with its loop's runtime bound, so code called from lane
// bodies (fault injection, event emission) reaches the owning runtime, not
// the singleton.
//
// Observation and steering go through ONE seam: RuntimeObserver
// (core/observer.hpp). add_observer/remove_observer register event sinks
// and participant facets; the legacy set_tuner / set_fault_hook entry
// points remain as thin adapters that register internal observers through
// that same seam, so existing tuner/fault code keeps working unchanged.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/fault_hook.hpp"
#include "core/observer.hpp"
#include "core/region.hpp"
#include "core/thread_pool.hpp"
#include "core/tuner_hook.hpp"

namespace llp {

class Runtime {
public:
  /// An independent runtime with its own pool, registry, observers, and
  /// configuration. num_threads <= 0 takes the LLP_NUM_THREADS /
  /// hardware-concurrency default, exactly like the process instance.
  explicit Runtime(int num_threads = 0);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Process-default instance (the historical singleton).
  static Runtime& instance();

  /// The runtime parallel constructs on this thread dispatch to: the one
  /// bound by the innermost live RuntimeScope, else the process default.
  static Runtime& current();

  /// Current lane count used by parallel constructs (>= 1).
  int num_threads();

  /// Change the lane count; the pool is rebuilt on next use. Thread-safe,
  /// but must not be called from inside a parallel region.
  void set_num_threads(int n);

  /// Shared pool, created lazily at the configured size.
  ThreadPool& pool();

  /// Check out a pool for a loop whose num_threads differs from the shared
  /// pool. Pools are cached per size and reused across invocations (the
  /// autotuner explores thread counts constantly; constructing a pool per
  /// invocation would swamp the loop it is tuning). The pool is removed
  /// from the cache while in use, so concurrent loops at the same size
  /// each get their own — same semantics as a freshly built pool.
  std::unique_ptr<ThreadPool> acquire_transient_pool(int size);
  /// Return a checked-out pool to the cache (drops it when the cache is
  /// full). Skip the call on exception paths — destroying the pool is fine.
  void release_transient_pool(std::unique_ptr<ThreadPool> pool);

  /// Region registry used by doacross/serial_region instrumentation.
  RegionRegistry& regions() { return regions_; }

  // --- the unified observer seam ------------------------------------

  /// Register an observer: it starts receiving every runtime event, and
  /// its tuner/fault facets (if any) are consulted by parallel loops.
  /// The observer must outlive every parallel construct that runs while
  /// registered. Duplicate registration is a no-op.
  void add_observer(RuntimeObserver* observer);
  /// Unregister. Must not race loops still running (same contract as the
  /// legacy hook setters). Unknown observers are ignored.
  void remove_observer(RuntimeObserver* observer);
  /// Immutable snapshot of the registered observers — one shared_ptr load;
  /// loops capture it for their whole invocation. Never null.
  ObserverSnapshot observers();
  /// Dispatch one event to all registered observers (cold-path helper for
  /// subsystems without a snapshot in hand: fault firing, checkpoint
  /// writes, solver steps).
  void emit(Event event);

  // --- legacy hook facades, now adapters over the seam ---------------

  /// Autotuner consulted by auto-tuned loops. Non-owning; nullptr
  /// detaches. Registers an internal adapter observer whose tuner_facet
  /// returns `tuner`; equivalent to add_observer with your own facet.
  void set_tuner(LoopTuner* tuner);
  /// First tuner facet among registered observers (nullptr when none).
  LoopTuner* tuner();

  /// Master switch for auto-tuned loops; initialized from LLP_TUNE=1.
  /// kAuto loops fall back to their explicit options when disabled or when
  /// no tuner is installed.
  bool auto_tune_enabled();
  void set_auto_tune_enabled(bool on);

  /// Fault-injection hook consulted by instrumented loops. Non-owning;
  /// nullptr detaches. Same adapter mechanism as set_tuner.
  void set_fault_hook(FaultHook* hook);
  /// First fault facet among registered observers (nullptr when none).
  FaultHook* fault_hook();

  /// Watchdog deadline applied to every pool this runtime hands out
  /// (shared and transient); <= 0 disables. Initialized from
  /// LLP_WATCHDOG_MS. Takes effect immediately on the shared pool and on
  /// transient pools at their next checkout.
  double watchdog_seconds();
  void set_watchdog_seconds(double seconds);

private:
  // Internal adapter observers behind the legacy facades.
  struct TunerAdapter final : RuntimeObserver {
    LoopTuner* hook = nullptr;
    LoopTuner* tuner_facet() override { return hook; }
  };
  struct FaultAdapter final : RuntimeObserver {
    FaultHook* hook = nullptr;
    FaultHook* fault_facet() override { return hook; }
  };

  // Rebuild the copy-on-write observer snapshot. Caller holds mu_.
  void add_observer_locked(RuntimeObserver* observer);
  void remove_observer_locked(RuntimeObserver* observer);

  std::mutex mu_;
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<ThreadPool>> transient_pools_;
  ObserverSnapshot observers_;
  TunerAdapter tuner_adapter_;
  FaultAdapter fault_adapter_;
  bool auto_tune_ = false;
  double watchdog_seconds_ = 0.0;
  RegionRegistry regions_;
};

namespace detail {
// The runtime bound to this thread (nullptr = process default). Written
// only by RuntimeScope on this thread, so no synchronization is needed.
inline thread_local Runtime* tls_current_runtime = nullptr;
}  // namespace detail

inline Runtime& Runtime::current() {
  Runtime* rt = detail::tls_current_runtime;
  return rt != nullptr ? *rt : instance();
}

/// RAII: bind `rt` as this thread's current runtime for the scope's
/// lifetime. Scopes nest (the previous binding is restored on exit). The
/// parallel constructs bind the dispatching runtime inside every lane, so
/// a scope installed around a solver run covers worker threads too.
class RuntimeScope {
public:
  explicit RuntimeScope(Runtime& rt) noexcept
      : prev_(detail::tls_current_runtime) {
    detail::tls_current_runtime = &rt;
  }
  ~RuntimeScope() { detail::tls_current_runtime = prev_; }
  RuntimeScope(const RuntimeScope&) = delete;
  RuntimeScope& operator=(const RuntimeScope&) = delete;

private:
  Runtime* prev_;
};

/// Shorthand accessors (current runtime: the bound one, else the process
/// default — unchanged behaviour for code that never binds a scope).
inline RegionRegistry& regions() { return Runtime::current().regions(); }
inline int num_threads() { return Runtime::current().num_threads(); }
inline void set_num_threads(int n) { Runtime::current().set_num_threads(n); }

/// First tuner / fault facet in a snapshot (what parallel_for consults).
inline LoopTuner* find_tuner(const ObserverList& observers) {
  for (RuntimeObserver* o : observers) {
    if (LoopTuner* t = o->tuner_facet()) return t;
  }
  return nullptr;
}
inline FaultHook* find_fault_hook(const ObserverList& observers) {
  for (RuntimeObserver* o : observers) {
    if (FaultHook* f = o->fault_facet()) return f;
  }
  return nullptr;
}
inline AccessHook* find_access_hook(const ObserverList& observers) {
  for (RuntimeObserver* o : observers) {
    if (AccessHook* a = o->access_facet()) return a;
  }
  return nullptr;
}

}  // namespace llp
