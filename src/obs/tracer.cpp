#include "obs/tracer.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "core/runtime.hpp"
#include "util/format.hpp"

namespace llp::obs {

namespace {

// Monotone id per Tracer instance so the thread-local slot cache can never
// alias a new tracer allocated at a dead tracer's address.
std::atomic<std::uint64_t> g_tracer_ids{1};

struct SlotCache {
  std::uint64_t tracer_id = 0;
  int slot = -1;
};
thread_local SlotCache t_slot_cache;

}  // namespace

Tracer::Tracer(TracerConfig config) : config_(config) {
  if (config_.max_threads < 1) config_.max_threads = 1;
  rings_.reserve(static_cast<std::size_t>(config_.max_threads));
  for (int i = 0; i < config_.max_threads; ++i) {
    rings_.push_back(std::make_unique<EventRing>(config_.buffer_events));
  }
  id_ = g_tracer_ids.fetch_add(1, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

int Tracer::slot_for_current_thread() {
  if (t_slot_cache.tracer_id == id_) return t_slot_cache.slot;
  std::lock_guard<std::mutex> lock(slot_mu_);
  const std::thread::id self = std::this_thread::get_id();
  auto it = slot_by_thread_.find(self);
  int slot;
  if (it != slot_by_thread_.end()) {
    slot = it->second;
  } else if (next_slot_ < config_.max_threads) {
    slot = next_slot_++;
    slot_by_thread_.emplace(self, slot);
  } else {
    slot = -1;  // out of rings: this thread's events are dropped (counted)
    slot_by_thread_.emplace(self, slot);
  }
  t_slot_cache = SlotCache{id_, slot};
  return slot;
}

void Tracer::on_event(const Event& event) {
  // Warm path first: exact metrics, per invocation / per lane frequency.
  switch (event.kind) {
    case EventKind::kRegionEnter:
    case EventKind::kRegionExit:
    case EventKind::kLaneEnd:
    case EventKind::kCancel:
    case EventKind::kFault:
      fold_metrics(event);
      break;
    case EventKind::kChunkAcquire:
      fold_metrics(event);
      break;
    default:
      break;
  }
  const int slot = slot_for_current_thread();
  if (slot < 0) {
    slotless_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event stamped = event;
  stamped.tid = slot;
  rings_[static_cast<std::size_t>(slot)]->try_push(stamped);
}

void Tracer::fold_metrics(const Event& event) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (event.region == kNoRegion) {
    if (event.kind == EventKind::kFault) ++global_faults_;
    return;
  }
  if (event.region >= metrics_.size()) {
    metrics_.resize(event.region + 1);
  }
  RegionMetrics& m = metrics_[event.region];
  switch (event.kind) {
    case EventKind::kRegionEnter:
      m.trips += static_cast<std::uint64_t>(event.a > 0 ? event.a : 0);
      break;
    case EventKind::kRegionExit: {
      ++m.invocations;
      m.latency.add(static_cast<std::uint64_t>(event.a > 0 ? event.a : 0));
      if (m.inflight_lanes > 0) {
        const double max_s =
            static_cast<double>(m.inflight_lane_max_ns) * 1e-9;
        const double mean_s =
            static_cast<double>(m.inflight_lane_sum_ns) * 1e-9 /
            static_cast<double>(m.inflight_lanes);
        m.lane_max_seconds += max_s;
        m.lane_mean_seconds += mean_s;
        if (mean_s > 0.0) {
          m.imbalance_sum += max_s / mean_s;
          ++m.imbalance_count;
        }
      }
      m.inflight_lane_max_ns = 0;
      m.inflight_lane_sum_ns = 0;
      m.inflight_lanes = 0;
      break;
    }
    case EventKind::kLaneEnd: {
      // The fork-join structure guarantees every lane end of an invocation
      // precedes its region exit, so in-flight accumulation is safe.
      const auto lane_ns = static_cast<std::uint64_t>(event.a > 0 ? event.a : 0);
      m.inflight_lane_max_ns = std::max(m.inflight_lane_max_ns, lane_ns);
      m.inflight_lane_sum_ns += lane_ns;
      ++m.inflight_lanes;
      break;
    }
    case EventKind::kChunkAcquire:
      ++m.chunks;
      break;
    case EventKind::kCancel:
      ++m.cancels;
      break;
    case EventKind::kFault:
      ++m.faults;
      break;
    default:
      break;
  }
}

std::vector<Event> Tracer::drain() {
  std::vector<Event> out;
  std::lock_guard<std::mutex> lock(drain_mu_);
  for (auto& ring : rings_) ring->drain(out);
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = slotless_drops_.load(std::memory_order_relaxed);
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::uint64_t Tracer::accepted() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->pushed();
  return total;
}

std::vector<RegionLatency> Tracer::region_latencies() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<RegionLatency> out;
  auto& registry = llp::regions();
  for (RegionId id = 0; id < metrics_.size(); ++id) {
    const RegionMetrics& m = metrics_[id];
    if (m.invocations == 0 && m.trips == 0 && m.faults == 0) continue;
    RegionLatency r;
    r.region = id;
    r.name = id < registry.size() ? registry.stats(id).name
                                  : strfmt("region#%zu", id);
    r.invocations = m.invocations;
    r.p50_ns = m.latency.quantile(0.50);
    r.p95_ns = m.latency.quantile(0.95);
    r.p99_ns = m.latency.quantile(0.99);
    r.mean_ns = m.latency.mean();
    r.imbalance = m.imbalance_count > 0
                      ? m.imbalance_sum /
                            static_cast<double>(m.imbalance_count)
                      : 0.0;
    r.chunks = m.chunks;
    r.cancels = m.cancels;
    r.faults = m.faults;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<llp::RegionStats> Tracer::to_region_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<llp::RegionStats> out;
  auto& registry = llp::regions();
  for (RegionId id = 0; id < metrics_.size(); ++id) {
    const RegionMetrics& m = metrics_[id];
    if (m.invocations == 0) continue;
    llp::RegionStats s;
    s.name = id < registry.size() ? registry.stats(id).name
                                  : strfmt("region#%zu", id);
    s.invocations = m.invocations;
    s.total_trips = m.trips;
    s.seconds = static_cast<double>(m.latency.mean()) * 1e-9 *
                static_cast<double>(m.invocations);
    s.lane_max_seconds = m.lane_max_seconds;
    s.lane_mean_seconds = m.lane_mean_seconds;
    s.faults = m.faults;
    out.push_back(std::move(s));
  }
  return out;
}

std::string Tracer::summary() const {
  const std::vector<RegionLatency> rows = region_latencies();
  std::ostringstream os;
  os << strfmt("%-28s %10s %10s %10s %10s %7s %8s %7s %6s\n", "region",
               "invocs", "p50(us)", "p95(us)", "p99(us)", "imbal", "chunks",
               "cancel", "fault");
  for (const RegionLatency& r : rows) {
    os << strfmt("%-28s %10llu %10.1f %10.1f %10.1f %7.2f %8llu %7llu %6llu\n",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.invocations),
                 static_cast<double>(r.p50_ns) / 1e3,
                 static_cast<double>(r.p95_ns) / 1e3,
                 static_cast<double>(r.p99_ns) / 1e3, r.imbalance,
                 static_cast<unsigned long long>(r.chunks),
                 static_cast<unsigned long long>(r.cancels),
                 static_cast<unsigned long long>(r.faults));
  }
  os << strfmt("events dropped: %llu\n",
               static_cast<unsigned long long>(dropped()));
  return os.str();
}

}  // namespace llp::obs
