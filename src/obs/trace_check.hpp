// Validator for exported Chrome traces — the checking half of the
// `llp_trace check` CLI and the CI trace job.
//
// Checks, in order:
//   1. the file is one well-formed JSON document (own minimal parser — no
//      external dependency);
//   2. the top level is an object with a "traceEvents" array;
//   3. every entry has name (string), ph (string), ts (number, >= 0 and
//      non-decreasing is NOT required — Chrome sorts), pid and tid
//      (numbers);
//   4. duration events balance: per (pid, tid) row, every "E" closes the
//      most recent open "B" with the same name, and no "B" is left open.
#pragma once

#include <cstddef>
#include <istream>
#include <string>

namespace llp::obs {

struct TraceCheckResult {
  bool ok = false;
  std::string error;          ///< first failure, empty when ok
  std::size_t events = 0;     ///< traceEvents entries
  std::size_t begins = 0;     ///< ph == "B"
  std::size_t ends = 0;       ///< ph == "E"
  std::size_t instants = 0;   ///< ph == "i"
  std::size_t names = 0;      ///< distinct event names
};

TraceCheckResult check_chrome_trace(std::istream& in);
TraceCheckResult check_chrome_trace_file(const std::string& path);

/// One-line human summary of a result.
std::string format_check(const TraceCheckResult& result);

}  // namespace llp::obs
