// Tracer: the always-on observability backend behind RuntimeObserver.
//
// Hot path (on_event, called from every lane): look up this thread's ring
// slot (one TLS compare on the common path), stamp the slot id into the
// event, push into the thread's private SPSC ring. Lock-free, bounded
// memory, drop-counted on overflow.
//
// Warm path (region exits, lane ends, faults — per invocation, not per
// chunk): fold the event into per-region metrics under a mutex, so latency
// histograms and imbalance numbers stay EXACT even when rings overflow and
// the timeline loses events.
//
// Cold path (drain/export): swallow every ring into one vector, in per-ring
// FIFO order, for the Chrome-trace exporter; or render histogram summaries
// (p50/p95/p99, imbalance, chunk counts) and RegionStats snapshots that
// feed perf::advise and perf::contention_scan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/observer.hpp"
#include "core/region.hpp"
#include "obs/event_ring.hpp"
#include "obs/histogram.hpp"

namespace llp::obs {

struct TracerConfig {
  /// Per-thread ring capacity in events (rounded up to a power of two).
  /// At 40 bytes/event the default buffers ~650 KiB per active thread.
  std::size_t buffer_events = 1 << 14;
  /// Maximum distinct producing threads; later threads drop (counted).
  int max_threads = 256;
};

/// Per-region latency summary derived from the synchronous metrics.
struct RegionLatency {
  RegionId region = kNoRegion;
  std::string name;
  std::uint64_t invocations = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  double mean_ns = 0.0;
  double imbalance = 0.0;      ///< mean over invocations of max-lane/mean-lane
  std::uint64_t chunks = 0;    ///< chunk acquisitions (dynamic/guided steals)
  std::uint64_t cancels = 0;
  std::uint64_t faults = 0;
};

class Tracer final : public RuntimeObserver {
public:
  explicit Tracer(TracerConfig config = {});
  ~Tracer() override;

  const TracerConfig& config() const { return config_; }

  // RuntimeObserver: the hot path.
  void on_event(const Event& event) override;

  /// Move everything buffered out of the rings, with each event's tid set
  /// to its ring slot. Per-ring FIFO order within the result; interleave
  /// across rings by timestamp (the exporter sorts). Safe to call while
  /// lanes are still emitting — concurrent events land in the next drain.
  std::vector<Event> drain();

  /// Total events dropped so far: ring overflows plus events from threads
  /// beyond max_threads.
  std::uint64_t dropped() const;

  /// Events accepted into rings so far (drained or not).
  std::uint64_t accepted() const;

  /// Latency summaries for every region seen, in region-id order.
  std::vector<RegionLatency> region_latencies() const;

  /// The same metrics shaped as RegionStats (name, invocations, trips,
  /// seconds, lane max/mean), so a trace session can feed perf::advise and
  /// perf::contention_scan without going through the global registry.
  std::vector<llp::RegionStats> to_region_stats() const;

  /// Human-readable per-region table: p50/p95/p99 latency, imbalance,
  /// chunk/cancel/fault counts, plus the drop counter.
  std::string summary() const;

private:
  struct RegionMetrics {
    LatencyHistogram latency;         // region wall ns per invocation
    std::uint64_t invocations = 0;
    std::uint64_t trips = 0;
    std::uint64_t chunks = 0;
    std::uint64_t cancels = 0;
    std::uint64_t faults = 0;
    double imbalance_sum = 0.0;       // sum over invocations with lane data
    std::uint64_t imbalance_count = 0;
    double lane_max_seconds = 0.0;    // accumulated like RegionStats
    double lane_mean_seconds = 0.0;
    // In-flight lane accounting for the current invocation; folded and
    // reset at kRegionExit (the join guarantees lane ends come first).
    std::uint64_t inflight_lane_max_ns = 0;
    std::uint64_t inflight_lane_sum_ns = 0;
    std::uint32_t inflight_lanes = 0;
  };

  /// Ring slot for the calling thread, or -1 when max_threads is exhausted.
  int slot_for_current_thread();

  void fold_metrics(const Event& event);

  TracerConfig config_;
  std::uint64_t id_ = 0;  ///< process-unique, keys the TLS slot cache
  std::vector<std::unique_ptr<EventRing>> rings_;

  mutable std::mutex drain_mu_;  ///< serializes consumers (SPSC invariant)
  mutable std::mutex slot_mu_;
  std::unordered_map<std::thread::id, int> slot_by_thread_;
  int next_slot_ = 0;
  std::atomic<std::uint64_t> slotless_drops_{0};

  mutable std::mutex stats_mu_;
  std::vector<RegionMetrics> metrics_;      // indexed by RegionId
  std::uint64_t global_faults_ = 0;         // kFault with region == kNoRegion
};

}  // namespace llp::obs
