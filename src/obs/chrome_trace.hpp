// Chrome-trace (Trace Event Format) exporter: turns a drained event vector
// into JSON that chrome://tracing and Perfetto load directly.
//
// Mapping:
//   region enter/exit, lane begin/end, chunk acquire/finish, step
//   begin/end, ckpt write begin/end   ->  duration pairs (ph "B"/"E")
//   cancel, fault, rollback, ckpt durable, mark -> instants (ph "i")
//
// The exporter guarantees BALANCED output: a matching pass per thread row
// pairs begins with ends (by kind class and identity — region, lane,
// step...) and silently-but-countedly discards anything unpaired, so a
// trace truncated by ring overflow still loads cleanly. Timestamps are
// microseconds relative to the earliest event; the thread row (tid) is the
// tracer's ring slot.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/observer.hpp"

namespace llp::obs {

struct ChromeTraceOptions {
  /// Include per-chunk duration slices (the noisiest row; disable for very
  /// long runs where only region/lane structure matters).
  bool include_chunks = true;
  /// Ring-overflow count to record in the trace metadata, so a truncated
  /// timeline is visibly truncated inside the viewer as well.
  std::uint64_t dropped_events = 0;
};

struct ChromeTraceStats {
  std::size_t events_written = 0;    ///< JSON records emitted
  std::size_t unmatched_dropped = 0; ///< begins/ends discarded by pairing
};

/// Render `events` as a Chrome-trace JSON document on `os`.
ChromeTraceStats write_chrome_trace(const std::vector<Event>& events,
                                    std::ostream& os,
                                    const ChromeTraceOptions& options = {});

/// Same, to a file. Throws llp::IoError when the file cannot be written.
ChromeTraceStats write_chrome_trace_file(const std::vector<Event>& events,
                                         const std::string& path,
                                         const ChromeTraceOptions& options = {});

}  // namespace llp::obs
