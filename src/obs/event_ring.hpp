// Bounded single-producer/single-consumer ring of runtime events: the
// tracer's hot-path buffer.
//
// Each producing thread owns exactly one ring (the tracer assigns slots by
// thread id), so pushes need no CAS loop — one relaxed load of the cached
// consumer position, a slot write, and a release store of the new tail.
// The consumer side (export/drain) is serialized by the tracer's mutex.
//
// Overflow drops the NEW event and counts it; it never blocks the lane and
// never overwrites history. A dropped-event count is part of the exported
// metadata, so a truncated trace is always visibly truncated (histogram
// metrics are unaffected: the tracer computes them synchronously, not from
// the rings).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/observer.hpp"

namespace llp::obs {

class EventRing {
public:
  /// Capacity is rounded up to a power of two, minimum 8.
  explicit EventRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 8 ? std::size_t{8} : capacity)),
        mask_(slots_.size() - 1) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false (and counts a drop) when full.
  bool try_push(const Event& event) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Acquire pairs with the consumer's release of head_: once we observe a
    // freed slot, the consumer is done reading it.
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail & mask_] = event;
    // Release publishes the slot write to the consumer.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: append everything currently buffered to `out` and free
  /// the slots. Returns the number of events drained.
  std::size_t drain(std::vector<Event>& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    for (std::uint64_t i = head; i != tail; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    head_.store(tail, std::memory_order_release);
    return static_cast<std::size_t>(tail - head);
  }

  /// Events rejected because the ring was full.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Events successfully pushed over the ring's lifetime.
  std::uint64_t pushed() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }

  /// Events currently buffered (approximate under concurrent pushes).
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

private:
  std::vector<Event> slots_;
  std::size_t mask_;
  // Producer and consumer indices on separate cache lines so pushes and
  // drains do not false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer writes
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer writes
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace llp::obs
