// llp::obs — process-global observability: one Tracer registered with the
// runtime's observer seam, plus export plumbing.
//
// Precedence follows util/env.hpp: an explicit install() / set_export_path()
// call (e.g. from f3d_run --trace=FILE) always wins over the environment;
// LLP_TRACE=file.json / LLP_TRACE_BUFFER=N configure processes that were
// not started through a flag-aware tool. Either way an export of whatever
// the rings hold is attempted at normal process exit (std::atexit), so a
// traced run that forgets to export still leaves a file. Abnormal exits
// (std::_Exit on injected crashes) skip it by design — the rings live in
// the dying process.
#pragma once

#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/tracer.hpp"
#include "obs/trace_check.hpp"

namespace llp::obs {

/// Install the process-global tracer and register it with the runtime.
/// Idempotent: a second call returns the existing tracer (config ignored).
Tracer& install(const TracerConfig& config = {});

/// The global tracer, or nullptr when install()/init_from_env() never ran.
Tracer* global_tracer();

/// Unregister and destroy the global tracer (primarily for tests). Any
/// pending at-exit export is cancelled.
void uninstall();

/// Path the at-exit hook will export to; empty disables the hook.
void set_export_path(const std::string& path);
std::string export_path();

/// Drain the global tracer and write a Chrome trace to `path`. Returns
/// false (with `error` filled, if given) when no tracer is installed or the
/// write fails. Clears the pending at-exit export when it targeted the same
/// path — an explicit export is not repeated at exit.
bool export_trace(const std::string& path, std::string* error = nullptr);

/// LLP_TRACE=file.json installs the tracer (ring capacity LLP_TRACE_BUFFER,
/// default TracerConfig) and arranges the at-exit export to that file.
/// Returns true when a tracer is installed after the call. Idempotent; a
/// prior explicit install() keeps its configuration and merely gains the
/// export path (explicit beats environment).
bool init_from_env();

}  // namespace llp::obs
