#include "obs/obs.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>

#include "core/runtime.hpp"
#include "util/env.hpp"

namespace llp::obs {

namespace {

std::mutex g_mu;
std::unique_ptr<Tracer> g_tracer;
std::string g_export_path;
bool g_atexit_registered = false;

void export_at_exit() {
  // Exit path: never throw, never block on a lock held by a dead thread
  // (the mutex is only ever held briefly on this path's own thread).
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    path = g_export_path;
  }
  if (path.empty() || g_tracer == nullptr) return;
  std::string error;
  export_trace(path, &error);  // best effort; errors die with the process
}

}  // namespace

Tracer& install(const TracerConfig& config) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_tracer == nullptr) {
    g_tracer = std::make_unique<Tracer>(config);
    Runtime::instance().add_observer(g_tracer.get());
  }
  return *g_tracer;
}

Tracer* global_tracer() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_tracer.get();
}

void uninstall() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_tracer != nullptr) {
    Runtime::instance().remove_observer(g_tracer.get());
    g_tracer.reset();
  }
  g_export_path.clear();
}

void set_export_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_export_path = path;
  if (!path.empty() && !g_atexit_registered) {
    std::atexit(export_at_exit);
    g_atexit_registered = true;
  }
}

std::string export_path() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_export_path;
}

bool export_trace(const std::string& path, std::string* error) {
  Tracer* tracer = global_tracer();
  if (tracer == nullptr) {
    if (error != nullptr) *error = "no tracer installed";
    return false;
  }
  try {
    ChromeTraceOptions options;
    options.dropped_events = tracer->dropped();
    write_chrome_trace_file(tracer->drain(), path, options);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_export_path == path) g_export_path.clear();  // done; skip at-exit
  return true;
}

bool init_from_env() {
  const std::string path = env::get_string("LLP_TRACE", "");
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_tracer != nullptr) {
      // Explicit install wins; the env var can still name the export file
      // if nothing set one yet.
      if (!path.empty() && g_export_path.empty()) {
        g_export_path = path;
        if (!g_atexit_registered) {
          std::atexit(export_at_exit);
          g_atexit_registered = true;
        }
      }
      return true;
    }
  }
  if (path.empty()) return false;
  TracerConfig config;
  config.buffer_events = static_cast<std::size_t>(
      env::get_int("LLP_TRACE_BUFFER", static_cast<long>(config.buffer_events),
                   64, 1L << 24));
  install(config);
  set_export_path(path);
  return true;
}

}  // namespace llp::obs
