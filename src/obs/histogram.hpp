// Log-bucketed latency histogram: fixed memory, ~19% worst-case relative
// error per bucket (4 sub-buckets per power of two), quantile queries by
// bucket walk. Not internally synchronized — the tracer updates it under
// its stats mutex (region exits are per-invocation, far off the hot path).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace llp::obs {

class LatencyHistogram {
public:
  // 64 octaves x 4 sub-buckets covers the full uint64 nanosecond range.
  static constexpr int kSubBits = 2;
  static constexpr int kBuckets = 64 << kSubBits;

  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns < (1u << kSubBits)) return static_cast<int>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const int sub =
        static_cast<int>((ns >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
    return (msb << kSubBits) + sub;
  }

  /// Representative value (geometric-ish midpoint) for a bucket.
  static std::uint64_t bucket_value(int bucket) noexcept {
    if (bucket < (1 << kSubBits)) return static_cast<std::uint64_t>(bucket);
    const int msb = bucket >> kSubBits;
    const int sub = bucket & ((1 << kSubBits) - 1);
    const std::uint64_t lo =
        (std::uint64_t{1} << msb) +
        (static_cast<std::uint64_t>(sub) << (msb - kSubBits));
    return lo + (std::uint64_t{1} << (msb - kSubBits)) / 2;
  }

  void add(std::uint64_t ns) noexcept {
    ++counts_[static_cast<std::size_t>(bucket_of(ns))];
    ++count_;
    sum_ += ns;
    if (ns < min_ || count_ == 1) min_ = ns;
    if (ns > max_) max_ = ns;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Approximate q-quantile (q in [0,1]) in nanoseconds; 0 when empty.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max_;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[static_cast<std::size_t>(b)];
      if (seen >= target) return bucket_value(b);
    }
    return max_;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (int b = 0; b < kBuckets; ++b) {
      counts_[static_cast<std::size_t>(b)] +=
          other.counts_[static_cast<std::size_t>(b)];
    }
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace llp::obs
