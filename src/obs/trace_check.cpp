#include "obs/trace_check.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "util/format.hpp"

namespace llp::obs {

namespace {

// ---- minimal JSON DOM -----------------------------------------------------
// Parses the full JSON grammar we emit (objects, arrays, strings with the
// common escapes, numbers, true/false/null). Errors carry a byte offset.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool parse(JsonValue& out, std::string& error) {
    pos_ = 0;
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = strfmt("trailing content at byte %zu", pos_);
      return false;
    }
    return true;
  }

private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(std::string& error, const std::string& what) {
    error = strfmt("%s at byte %zu", what.c_str(), pos_);
    return false;
  }

  bool parse_value(JsonValue& out, std::string& error) {
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out, error);
      case '[': return parse_array(out, error);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.str, error);
      case 't':
      case 'f': return parse_keyword(out, error);
      case 'n': return parse_keyword(out, error);
      default: return parse_number(out, error);
    }
  }

  bool parse_keyword(JsonValue& out, std::string& error) {
    auto match = [&](const char* word) {
      const std::size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return fail(error, "invalid literal");
  }

  bool parse_number(JsonValue& out, std::string& error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail(error, "invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      return fail(error, "invalid number");
    }
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail(error, "unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return fail(error, "truncated \\u escape");
            }
            for (int k = 1; k <= 4; ++k) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + k]))) {
                return fail(error, "invalid \\u escape");
              }
            }
            // Validation only — the checker never needs the decoded rune.
            out += '?';
            pos_ += 4;
            break;
          }
          default: return fail(error, "invalid escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_array(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, error)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail(error, "expected object key");
      }
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail(error, "expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or '}'");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

TraceCheckResult failure(std::string message) {
  TraceCheckResult r;
  r.ok = false;
  r.error = std::move(message);
  return r;
}

}  // namespace

TraceCheckResult check_chrome_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonParser parser(buf.str());
  JsonValue root;
  std::string error;
  if (!parser.parse(root, error)) {
    return failure("invalid JSON: " + error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return failure("top level is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return failure("missing traceEvents array");
  }

  TraceCheckResult r;
  std::set<std::string> names;
  // Per (pid, tid) row: stack of open "B" names.
  std::map<std::pair<double, double>, std::vector<std::string>> open;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (e.type != JsonValue::Type::kObject) {
      return failure(strfmt("traceEvents[%zu] is not an object", i));
    }
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (name == nullptr || name->type != JsonValue::Type::kString) {
      return failure(strfmt("traceEvents[%zu]: missing string name", i));
    }
    if (ph == nullptr || ph->type != JsonValue::Type::kString ||
        ph->str.size() != 1) {
      return failure(strfmt("traceEvents[%zu]: missing ph", i));
    }
    if (pid == nullptr || pid->type != JsonValue::Type::kNumber ||
        tid == nullptr || tid->type != JsonValue::Type::kNumber) {
      return failure(strfmt("traceEvents[%zu]: missing pid/tid", i));
    }
    const char phase = ph->str[0];
    if (phase != 'M') {
      const JsonValue* ts = e.find("ts");
      if (ts == nullptr || ts->type != JsonValue::Type::kNumber ||
          ts->number < 0.0) {
        return failure(strfmt("traceEvents[%zu]: missing or negative ts", i));
      }
    }
    ++r.events;
    names.insert(name->str);
    auto& stack = open[{pid->number, tid->number}];
    switch (phase) {
      case 'B':
        ++r.begins;
        stack.push_back(name->str);
        break;
      case 'E':
        ++r.ends;
        if (stack.empty()) {
          return failure(strfmt(
              "traceEvents[%zu]: E \"%s\" with no open B on its row", i,
              name->str.c_str()));
        }
        if (stack.back() != name->str) {
          return failure(strfmt(
              "traceEvents[%zu]: E \"%s\" does not close open B \"%s\"", i,
              name->str.c_str(), stack.back().c_str()));
        }
        stack.pop_back();
        break;
      case 'i':
        ++r.instants;
        break;
      case 'M':
        break;  // metadata
      default:
        return failure(strfmt("traceEvents[%zu]: unsupported ph \"%c\"", i,
                              phase));
    }
  }
  for (const auto& [row, stack] : open) {
    if (!stack.empty()) {
      return failure(strfmt("row pid=%g tid=%g: %zu unclosed B event(s), "
                            "first \"%s\"",
                            row.first, row.second, stack.size(),
                            stack.front().c_str()));
    }
  }
  r.names = names.size();
  r.ok = true;
  return r;
}

TraceCheckResult check_chrome_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return failure(strfmt("cannot open %s", path.c_str()));
  return check_chrome_trace(in);
}

std::string format_check(const TraceCheckResult& result) {
  if (!result.ok) return "FAIL: " + result.error;
  return strfmt(
      "OK: %zu events (%zu B / %zu E / %zu instant), %zu distinct names, "
      "all rows balanced",
      result.events, result.begins, result.ends, result.instants,
      result.names);
}

}  // namespace llp::obs
