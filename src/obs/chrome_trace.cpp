#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/runtime.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace llp::obs {

namespace {

enum class PairClass { kNone, kRegion, kLane, kChunk, kStep, kCkptWrite };

PairClass begin_class(EventKind k) {
  switch (k) {
    case EventKind::kRegionEnter: return PairClass::kRegion;
    case EventKind::kLaneBegin: return PairClass::kLane;
    case EventKind::kChunkAcquire: return PairClass::kChunk;
    case EventKind::kStepBegin: return PairClass::kStep;
    case EventKind::kCkptWriteBegin: return PairClass::kCkptWrite;
    default: return PairClass::kNone;
  }
}

PairClass end_class(EventKind k) {
  switch (k) {
    case EventKind::kRegionExit: return PairClass::kRegion;
    case EventKind::kLaneEnd: return PairClass::kLane;
    case EventKind::kChunkFinish: return PairClass::kChunk;
    case EventKind::kStepEnd: return PairClass::kStep;
    case EventKind::kCkptWriteEnd: return PairClass::kCkptWrite;
    default: return PairClass::kNone;
  }
}

bool is_instant(EventKind k) {
  switch (k) {
    case EventKind::kCancel:
    case EventKind::kFault:
    case EventKind::kRollback:
    case EventKind::kCkptDurable:
    case EventKind::kMark:
      return true;
    default:
      return false;
  }
}

/// Does end event `e` close begin event `b`?
bool ids_match(const Event& b, const Event& e, PairClass c) {
  switch (c) {
    case PairClass::kRegion: return b.region == e.region;
    case PairClass::kLane: return b.region == e.region && b.lane == e.lane;
    case PairClass::kChunk:
      // Chunk identity is its [begin,end) range on that lane. The end event
      // repeats the range, so a lane's interleaved history pairs exactly.
      return b.region == e.region && b.lane == e.lane && b.a == e.a &&
             b.b == e.b;
    case PairClass::kStep: return b.a == e.a;
    case PairClass::kCkptWrite: return b.a == e.a;
    case PairClass::kNone: return false;
  }
  return false;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string region_name(RegionId id) {
  if (id == kNoRegion) return "global";
  auto& registry = llp::regions();
  if (id < registry.size()) return registry.stats(id).name;
  return strfmt("region#%zu", id);
}

const char* category(PairClass c) {
  switch (c) {
    case PairClass::kRegion: return "region";
    case PairClass::kLane: return "lane";
    case PairClass::kChunk: return "chunk";
    case PairClass::kStep: return "step";
    case PairClass::kCkptWrite: return "ckpt";
    case PairClass::kNone: return "event";
  }
  return "event";
}

std::string display_name(const Event& b, PairClass c) {
  switch (c) {
    case PairClass::kRegion: return region_name(b.region);
    case PairClass::kLane: return strfmt("lane %d", b.lane);
    case PairClass::kChunk:
      return strfmt("chunk [%lld,%lld)", static_cast<long long>(b.a),
                    static_cast<long long>(b.b));
    case PairClass::kStep: return strfmt("step %lld",
                                         static_cast<long long>(b.a));
    case PairClass::kCkptWrite:
      return strfmt("ckpt write step %lld", static_cast<long long>(b.a));
    case PairClass::kNone: return event_kind_name(b.kind);
  }
  return event_kind_name(b.kind);
}

std::string ts_us(std::uint64_t t_ns, std::uint64_t epoch_ns) {
  const std::uint64_t rel = t_ns >= epoch_ns ? t_ns - epoch_ns : 0;
  return strfmt("%llu.%03llu", static_cast<unsigned long long>(rel / 1000),
                static_cast<unsigned long long>(rel % 1000));
}

}  // namespace

ChromeTraceStats write_chrome_trace(const std::vector<Event>& events,
                                    std::ostream& os,
                                    const ChromeTraceOptions& options) {
  ChromeTraceStats stats;

  // Timestamp order; stable so per-ring FIFO breaks ties (a lane's begin
  // precedes its first chunk even at equal nanoseconds).
  std::vector<const Event*> sorted;
  sorted.reserve(events.size());
  for (const Event& e : events) {
    const PairClass bc = begin_class(e.kind);
    const PairClass ec = end_class(e.kind);
    if (!options.include_chunks &&
        (bc == PairClass::kChunk || ec == PairClass::kChunk)) {
      continue;
    }
    if (bc == PairClass::kNone && ec == PairClass::kNone &&
        !is_instant(e.kind)) {
      continue;
    }
    sorted.push_back(&e);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) {
                     return a->t_ns < b->t_ns;
                   });

  // Pairing pass, per thread row: begins push; an end closes the matching
  // open (discarding anything opened above it — a lane aborted by a fault
  // leaves an open begin that must not unbalance the row); unmatched ends
  // and leftover opens are discarded. Output is balanced by construction.
  std::vector<signed char> keep(sorted.size(), 0);  // 1=B, 2=E, 3=instant
  std::unordered_map<int, std::vector<std::size_t>> open_by_tid;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Event& e = *sorted[i];
    if (is_instant(e.kind)) {
      keep[i] = 3;
      continue;
    }
    auto& stack = open_by_tid[e.tid];
    if (begin_class(e.kind) != PairClass::kNone) {
      stack.push_back(i);
      continue;
    }
    const PairClass c = end_class(e.kind);
    std::size_t depth = stack.size();
    while (depth > 0) {
      const std::size_t j = stack[depth - 1];
      if (begin_class(sorted[j]->kind) == c && ids_match(*sorted[j], e, c)) {
        break;
      }
      --depth;
    }
    if (depth == 0) {
      ++stats.unmatched_dropped;  // end with no matching open
      continue;
    }
    stats.unmatched_dropped += stack.size() - depth;  // aborted opens above
    keep[stack[depth - 1]] = 1;
    keep[i] = 2;
    stack.resize(depth - 1);
  }
  for (const auto& [tid, stack] : open_by_tid) {
    stats.unmatched_dropped += stack.size();
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& record) {
    if (!first) os << ",";
    os << "\n" << record;
    first = false;
    ++stats.events_written;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"llp\"}}");
  if (options.dropped_events > 0) {
    emit(strfmt("{\"name\":\"dropped_events\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":0,\"args\":{\"count\":%llu}}",
                static_cast<unsigned long long>(options.dropped_events)));
  }

  std::uint64_t epoch = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (keep[i] != 0) {
      epoch = sorted[i]->t_ns;
      break;
    }
  }

  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (keep[i] == 0) continue;
    const Event& e = *sorted[i];
    const int tid = e.tid >= 0 ? e.tid : 0;
    const std::string ts = ts_us(e.t_ns, epoch);
    if (keep[i] == 3) {
      emit(strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%s,\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"region\":\"%s\",\"a\":%lld,\"b\":%lld,"
                  "\"lane\":%d}}",
                  event_kind_name(e.kind), event_kind_name(e.kind), ts.c_str(),
                  tid, escape_json(region_name(e.region)).c_str(),
                  static_cast<long long>(e.a), static_cast<long long>(e.b),
                  e.lane));
    } else {
      const PairClass c = keep[i] == 1 ? begin_class(e.kind)
                                       : end_class(e.kind);
      // The end event repeats the begin's name — its identity fields
      // (region/lane/range/step) are identical by the pairing rules, so
      // display_name agrees on both, and `llp_trace check` can pair by name.
      emit(strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,"
                  "\"pid\":0,\"tid\":%d,\"args\":{\"a\":%lld,\"b\":%lld}}",
                  escape_json(display_name(e, c)).c_str(), category(c),
                  keep[i] == 1 ? "B" : "E", ts.c_str(), tid,
                  static_cast<long long>(e.a), static_cast<long long>(e.b)));
    }
  }
  os << "\n]}\n";
  return stats;
}

ChromeTraceStats write_chrome_trace_file(const std::vector<Event>& events,
                                         const std::string& path,
                                         const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError(strfmt("cannot open trace file %s", path.c_str()));
  const ChromeTraceStats stats = write_chrome_trace(events, out, options);
  out.flush();
  if (!out) throw IoError(strfmt("short write to trace file %s", path.c_str()));
  return stats;
}

}  // namespace llp::obs
